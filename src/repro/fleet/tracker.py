"""Per-GPU node state, health FSM, and least-contended placement.

The tracker maintains what the dispatcher knows about every simulated
GPU: when it frees up (contention), how much work and energy it has
absorbed (load), the mean operating level its controller last ran at
(frequency state), a first-order thermal proxy — and, since the fleet
resilience layer, a per-node **health FSM**:

``HEALTHY -> DEGRADED -> QUARANTINED -> RECOVERING -> HEALTHY``

* ``HEALTHY`` — full placement priority.
* ``DEGRADED`` — still placeable but deprioritized; entered on thermal
  runaway, a sensor-corruption storm (the guard-trip signal), or a
  streak of deadline misses.
* ``QUARANTINED`` — drained from placement entirely; entered on a node
  crash, a detected hang (heartbeat loss), or a guard-trip signal
  arriving while already degraded.  Only a timed recovery event ends a
  quarantine, so the state machine can never wedge on overload alone.
* ``RECOVERING`` — placeable on probation after the outage ends; a few
  clean completions re-admit the node to ``HEALTHY``, while a deadline
  miss demotes it to ``DEGRADED``.

Placement picks the **least-contended placeable** node: healthiest
state first, then smallest backlog, then the coolest and least-loaded
node, with the node id as the final deterministic tie-break — so an
idle fleet round-robins by temperature instead of piling every job
onto node 0, and a quarantined node never receives work.  Every state
transition increments a ``node_state_*`` counter for ``--stats`` and
the fleet JSON export.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..errors import FleetError
from .jobs import Job

#: Ambient temperature of the thermal proxy (deg C).
AMBIENT_C = 35.0

#: Health FSM states, healthiest first (placement priority order).
HEALTHY = "healthy"
DEGRADED = "degraded"
QUARANTINED = "quarantined"
RECOVERING = "recovering"
HEALTH_STATES = (HEALTHY, DEGRADED, QUARANTINED, RECOVERING)

#: Placement priority per health state (lower places first);
#: ``QUARANTINED`` is absent because quarantined nodes are drained.
_PLACEMENT_RANK = {HEALTHY: 0, RECOVERING: 1, DEGRADED: 2}

#: Counter prefixes of per-node policy observability worth exporting
#: at fleet scope (guard trips, drift alarms, rollbacks, injected
#: faults, calibration anomalies).
POLICY_COUNTER_PREFIXES = ("guard_", "drift_", "rollback_", "fault_",
                           "calibration_")


@dataclass(frozen=True)
class HealthPolicy:
    """Thresholds driving the per-node health FSM.

    ``miss_threshold`` consecutive deadline misses demote a healthy or
    recovering node to ``DEGRADED``; ``clean_streak`` consecutive
    on-deadline completions heal a degraded node once no degradation
    window (storm, thermal runaway) is still active; and
    ``probation_jobs`` clean completions re-admit a recovering node to
    ``HEALTHY``.
    """

    miss_threshold: int = 3
    clean_streak: int = 2
    probation_jobs: int = 2

    def __post_init__(self) -> None:
        if (self.miss_threshold < 1 or self.clean_streak < 1
                or self.probation_jobs < 1):
            raise FleetError("health policy thresholds must be >= 1")


@dataclass
class NodeState:
    """Dispatcher-visible state of one simulated GPU."""

    node_id: int
    free_at_s: float = 0.0
    jobs_assigned: int = 0
    jobs_done: int = 0
    busy_s: float = 0.0
    energy_j: float = 0.0
    temperature_c: float = AMBIENT_C
    peak_temperature_c: float = AMBIENT_C
    last_level_mean: float = 0.0
    last_update_s: float = 0.0
    #: Health FSM state (see module docstring).
    health: str = HEALTHY
    #: End of the current quarantine outage (meaningful while
    #: ``health == QUARANTINED``).
    quarantined_until: float = 0.0
    #: Progress stopped at this time (an undetected hang), or ``None``.
    hung_since: float | None = None
    #: End of the active sensor-corruption storm window (if any).
    storm_until: float = 0.0
    #: Service stretch applied to jobs dispatched during the storm.
    storm_slowdown: float = 1.0
    #: End of the active thermal-runaway degradation window (if any).
    hot_until: float = 0.0
    #: Jobs preempted off this node (crash/hang migrations).
    preemptions: int = 0
    #: Consecutive deadline misses / clean completions (FSM signals).
    miss_streak: int = 0
    clean_completions: int = 0
    #: Aggregated ``guard_*``/``drift_*``/... counters of the policies
    #: that completed jobs on this node.
    policy_counters: dict[str, int] = field(default_factory=dict)

    def backlog_s(self, now_s: float) -> float:
        """Seconds of already-committed work beyond ``now_s``."""
        return max(0.0, self.free_at_s - now_s)

    def utilization(self, horizon_s: float) -> float:
        """Busy fraction of the run horizon."""
        return self.busy_s / horizon_s if horizon_s > 0 else 0.0

    @property
    def placeable(self) -> bool:
        """True when the dispatcher may place new work here."""
        return self.health != QUARANTINED

    def to_payload(self) -> dict:
        """JSON-ready summary of this node."""
        return {
            "node_id": self.node_id,
            "jobs_done": self.jobs_done,
            "busy_s": self.busy_s,
            "energy_j": self.energy_j,
            "peak_temperature_c": self.peak_temperature_c,
            "last_level_mean": self.last_level_mean,
            "health": self.health,
            "quarantined_until": self.quarantined_until,
            "preemptions": self.preemptions,
            "policy_counters": dict(sorted(self.policy_counters.items())),
        }


@dataclass
class ThermalConfig:
    """First-order RC thermal proxy: heat per joule, exponential cool-down."""

    ambient_c: float = AMBIENT_C
    #: Temperature rise per joule of dissipated energy (deg C / J).
    heat_per_joule: float = 40.0
    #: Cool-down time constant (seconds of simulated fleet time).
    tau_s: float = 2e-3

    def __post_init__(self) -> None:
        if self.heat_per_joule < 0 or self.tau_s <= 0:
            raise FleetError("thermal proxy needs heat_per_joule >= 0 "
                             "and tau_s > 0")


class NodeTracker:
    """Book-keeping, health FSM and placement over the fleet's GPUs."""

    def __init__(self, num_nodes: int,
                 thermal: ThermalConfig | None = None,
                 health: HealthPolicy | None = None) -> None:
        if num_nodes < 1:
            raise FleetError("a fleet needs at least one node")
        self.thermal = thermal or ThermalConfig()
        self.health_policy = health or HealthPolicy()
        self.nodes = [NodeState(node_id=i,
                                temperature_c=self.thermal.ambient_c,
                                peak_temperature_c=self.thermal.ambient_c)
                      for i in range(num_nodes)]
        #: ``node_state_*`` transition counters (fleet observability).
        self.counters: dict[str, int] = {}

    def __len__(self) -> int:
        return len(self.nodes)

    # ------------------------------------------------------------------
    def _count(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def _cool(self, node: NodeState, now_s: float) -> None:
        """Decay the node's temperature toward ambient up to ``now_s``."""
        elapsed = max(0.0, now_s - node.last_update_s)
        if elapsed > 0:
            node.temperature_c = (
                self.thermal.ambient_c
                + (node.temperature_c - self.thermal.ambient_c)
                * math.exp(-elapsed / self.thermal.tau_s))
            node.last_update_s = now_s

    def contention_key(self, node: NodeState,
                       now_s: float) -> tuple[int, float, float, float, int]:
        """Placement sort key: health, backlog, heat, load, then id."""
        return (_PLACEMENT_RANK.get(node.health, len(_PLACEMENT_RANK)),
                node.backlog_s(now_s), node.temperature_c, node.busy_s,
                node.node_id)

    def placeable_nodes(self) -> list[NodeState]:
        """Nodes the dispatcher may still place work on (not drained)."""
        return [n for n in self.nodes if n.placeable]

    def least_contended(self, now_s: float, *,
                        idle_only: bool = False) -> NodeState:
        """The placeable node the dispatcher should use next.

        With ``idle_only`` the choice is restricted to nodes with no
        committed work beyond ``now_s`` — the dispatcher's mode, so a
        busy healthy node can never out-rank an idle recovering one and
        jobs never stack behind an in-flight assignment.
        """
        candidates = (self.idle_nodes(now_s) if idle_only
                      else self.placeable_nodes())
        if not candidates:
            raise FleetError("every node is quarantined; nothing is "
                             "placeable")
        for node in candidates:
            self._cool(node, now_s)
        return min(candidates, key=lambda n: self.contention_key(n, now_s))

    def idle_nodes(self, now_s: float) -> list[NodeState]:
        """Placeable nodes with no committed work beyond ``now_s``."""
        return [n for n in self.placeable_nodes()
                if n.free_at_s <= now_s + 1e-15]

    # ------------------------------------------------------------------
    # Health FSM
    # ------------------------------------------------------------------
    def _transition(self, node: NodeState, state: str) -> None:
        if node.health == state:
            return
        node.health = state
        node.miss_streak = 0
        node.clean_completions = 0
        self._count(f"node_state_{state}")

    def quarantine(self, node: NodeState, now_s: float, until_s: float,
                   reason: str) -> None:
        """Drain a node from placement until its outage ends.

        A quarantine extends (never shortens) any outage already in
        progress; the node's committed-work horizon is pushed to the
        outage end so its backlog reflects the downtime.
        """
        if until_s <= now_s:
            raise FleetError("a quarantine must end after it starts")
        self._cool(node, now_s)
        node.quarantined_until = max(node.quarantined_until, until_s)
        node.free_at_s = max(node.free_at_s, node.quarantined_until)
        node.hung_since = None
        self._count(f"node_quarantine_{reason}")
        self._transition(node, QUARANTINED)

    def degrade(self, node: NodeState, now_s: float, reason: str) -> None:
        """Guard-trip / thermal / miss-streak signal: deprioritize.

        A degradation signal on an already-degraded node escalates to
        quarantine only when the caller quarantines explicitly; here it
        just refreshes the state.  Quarantined nodes ignore the signal
        (the outage dominates).
        """
        if node.health == QUARANTINED:
            return
        self._cool(node, now_s)
        self._count(f"node_degrade_{reason}")
        self._transition(node, DEGRADED)

    def end_outage(self, node: NodeState, now_s: float) -> bool:
        """Timed recovery: move a quarantined node onto probation.

        Returns True when the node actually left quarantine — False if
        a later fault extended the outage past ``now_s`` (the caller's
        recovery event is then stale and a newer one is pending).
        """
        if node.health != QUARANTINED:
            return False
        if now_s + 1e-15 < node.quarantined_until:
            return False
        node.free_at_s = max(node.free_at_s, now_s)
        self._transition(node, RECOVERING)
        return True

    def clear_degradation(self, node: NodeState, now_s: float) -> bool:
        """Timed recovery of a degradation window (storm / thermal).

        Heals ``DEGRADED -> HEALTHY`` once no degradation window is
        still active.  Quarantined and recovering nodes are left to
        their own exits.
        """
        if node.health != DEGRADED:
            return False
        if now_s + 1e-15 < max(node.storm_until, node.hot_until):
            return False
        self._transition(node, HEALTHY)
        return True

    def note_deadline_miss(self, node: NodeState) -> None:
        """Deadline-miss signal: a streak demotes the node."""
        node.clean_completions = 0
        node.miss_streak += 1
        if (node.health in (HEALTHY, RECOVERING)
                and node.miss_streak >= self.health_policy.miss_threshold):
            self._count("node_degrade_deadline_misses")
            self._transition(node, DEGRADED)

    def note_clean_completion(self, node: NodeState,
                              now_s: float) -> None:
        """On-deadline completion: streaks heal probation/degradation."""
        node.miss_streak = 0
        node.clean_completions += 1
        if (node.health == RECOVERING
                and node.clean_completions
                >= self.health_policy.probation_jobs):
            self._count("node_readmissions")
            self._transition(node, HEALTHY)
        elif (node.health == DEGRADED
                and node.clean_completions >= self.health_policy.clean_streak
                and now_s + 1e-15 >= max(node.storm_until, node.hot_until)):
            self._transition(node, HEALTHY)

    # ------------------------------------------------------------------
    def assign(self, node: NodeState, job: Job, start_s: float,
               finish_s: float) -> None:
        """Commit a job to a node for the ``[start_s, finish_s)`` window."""
        if finish_s < start_s:
            raise FleetError("job cannot finish before it starts")
        if not node.placeable:
            raise FleetError(
                f"node {node.node_id} is quarantined until "
                f"{node.quarantined_until:.6g}s; it cannot accept work")
        if start_s < node.free_at_s - 1e-15:
            raise FleetError(
                f"node {node.node_id} is busy until {node.free_at_s:.6g}s; "
                f"cannot start a job at {start_s:.6g}s")
        node.free_at_s = finish_s
        node.jobs_assigned += 1

    def complete(self, node: NodeState, finish_s: float, service_s: float,
                 energy_j: float, mean_level: float) -> None:
        """Fold a finished job's measurements into the node state."""
        self._cool(node, finish_s)
        node.jobs_done += 1
        node.busy_s += service_s
        node.energy_j += energy_j
        node.last_level_mean = mean_level
        node.temperature_c += self.thermal.heat_per_joule * energy_j
        node.peak_temperature_c = max(node.peak_temperature_c,
                                      node.temperature_c)

    def absorb_partial(self, node: NodeState, now_s: float, busy_s: float,
                       energy_j: float) -> None:
        """Fold a *preempted* job segment's wall time and energy in.

        The work executed before the preemption (including the part
        that will be lost to the last checkpoint) still occupied and
        heated this node, even though the job completes elsewhere.
        """
        self._cool(node, now_s)
        node.busy_s += busy_s
        node.energy_j += energy_j
        node.preemptions += 1
        node.temperature_c += self.thermal.heat_per_joule * energy_j
        node.peak_temperature_c = max(node.peak_temperature_c,
                                      node.temperature_c)

    def thermal_runaway(self, node: NodeState, now_s: float,
                        spike_c: float, until_s: float) -> None:
        """Inject a thermal-runaway event: spike and degrade the node."""
        self._cool(node, now_s)
        node.temperature_c += spike_c
        node.peak_temperature_c = max(node.peak_temperature_c,
                                      node.temperature_c)
        node.hot_until = max(node.hot_until, until_s)
        self.degrade(node, now_s, "thermal")

    def merge_policy_counters(self, node: NodeState,
                              counters: dict[str, int] | None) -> None:
        """Fold a completed job's policy counters into its node.

        Only resilience-relevant counters (``guard_*``, ``drift_*``,
        ``rollback_*``, ``fault_*``, ``calibration_*``) are kept, so
        node summaries stay compact while per-node guard trips remain
        visible at fleet scope.
        """
        for name, amount in (counters or {}).items():
            if name.startswith(POLICY_COUNTER_PREFIXES):
                node.policy_counters[name] = \
                    node.policy_counters.get(name, 0) + int(amount)

    def to_payload(self) -> list[dict]:
        """JSON-ready per-node summaries, ordered by node id."""
        return [node.to_payload() for node in self.nodes]
