"""Fleet-scale DVFS: a cluster scheduler over per-GPU controllers.

Models a datacenter of N simulated GPUs serving a live job stream:
:mod:`~repro.fleet.jobs` generates deterministic arrival traces of
latency-sensitive and throughput jobs with per-job deadlines,
:mod:`~repro.fleet.queue` orders the pending backlog earliest-deadline-
first, :mod:`~repro.fleet.tracker` maintains per-GPU contention /
frequency / thermal state for least-contended placement, and
:mod:`~repro.fleet.scheduler` replays the trace — each job running
under its node's own DVFS controller (SSMDVFS, guarded, or any
baseline) through the resilient campaign layer.
:mod:`~repro.fleet.metrics` aggregates the result into fleet EDP,
SLO-violation rate and p50/p95/p99 tail latency, with atomic JSON
export.  Exposed on the CLI as ``repro-ssmdvfs fleet``.
"""

from .jobs import (BUILTIN_TRACES, JOB_CLASSES, LATENCY, THROUGHPUT, Job,
                   TraceConfig, build_trace)
from .metrics import FleetResult, JobOutcome, tail_latencies
from .queue import PendingJobQueue
from .scheduler import FLEET_POLICIES, ClusterScheduler, policy_factory
from .tracker import NodeState, NodeTracker, ThermalConfig

__all__ = [
    "BUILTIN_TRACES", "JOB_CLASSES", "LATENCY", "THROUGHPUT", "Job",
    "TraceConfig", "build_trace", "FleetResult", "JobOutcome",
    "tail_latencies", "PendingJobQueue", "FLEET_POLICIES",
    "ClusterScheduler", "policy_factory", "NodeState", "NodeTracker",
    "ThermalConfig",
]
