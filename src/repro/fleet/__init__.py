"""Fleet-scale DVFS: a cluster scheduler over per-GPU controllers.

Models a datacenter of N simulated GPUs serving a live job stream:
:mod:`~repro.fleet.jobs` generates deterministic arrival traces of
latency-sensitive and throughput jobs with per-job deadlines,
:mod:`~repro.fleet.queue` orders the pending backlog earliest-deadline-
first (with admission control for deterministic load shedding),
:mod:`~repro.fleet.tracker` maintains per-GPU contention / frequency /
thermal state plus a per-node health FSM (``HEALTHY -> DEGRADED ->
QUARANTINED -> RECOVERING``) for least-contended placement, and
:mod:`~repro.fleet.scheduler` replays the trace — each job running
under its node's own DVFS controller (SSMDVFS, guarded, or any
baseline) through the resilient campaign layer, with seeded node-level
faults (:class:`~repro.faults.NodeFaultPlan`), checkpointed migration
of preempted jobs, and shed accounting.
:mod:`~repro.fleet.metrics` aggregates the result into fleet EDP,
SLO-violation rate, p50/p95/p99 tail latency and shed/migration
counters, with atomic JSON export.  Exposed on the CLI as
``repro-ssmdvfs fleet`` and stress-tested by ``repro-ssmdvfs
fleet-chaos``.
"""

from .jobs import (BUILTIN_TRACES, JOB_CLASSES, LATENCY, THROUGHPUT, Job,
                   TraceConfig, build_trace)
from .metrics import FleetResult, JobOutcome, ShedJob, tail_latencies
from .queue import AdmissionConfig, PendingJobQueue
from .scheduler import (FLEET_POLICIES, ClusterScheduler, MigrationConfig,
                        policy_factory)
from .tracker import (DEGRADED, HEALTH_STATES, HEALTHY, QUARANTINED,
                      RECOVERING, HealthPolicy, NodeState, NodeTracker,
                      ThermalConfig)

__all__ = [
    "BUILTIN_TRACES", "JOB_CLASSES", "LATENCY", "THROUGHPUT", "Job",
    "TraceConfig", "build_trace", "FleetResult", "JobOutcome", "ShedJob",
    "tail_latencies", "AdmissionConfig", "PendingJobQueue",
    "FLEET_POLICIES", "ClusterScheduler", "MigrationConfig",
    "policy_factory", "DEGRADED", "HEALTH_STATES", "HEALTHY",
    "QUARANTINED", "RECOVERING", "HealthPolicy", "NodeState",
    "NodeTracker", "ThermalConfig",
]
