"""Cluster scheduler: an arrival trace over per-GPU DVFS controllers.

Two-phase, deterministic fleet replay:

1. **Simulate** — every job is an independent (kernel, policy, seed)
   simulation: a fresh per-node controller drives a fresh
   :class:`~repro.gpu.simulator.GPUSimulator` built from a stable
   per-job seed (:func:`repro.parallel.derive_seed`).  The phase fans
   out over the resilient campaign layer
   (:func:`repro.parallel.parallel_map`), so hundreds of simulated GPUs
   reuse the retry/quarantine/checkpoint machinery and the ``--stats``
   counters of every other campaign in the repo.  Because service time
   and energy depend only on the job's own seed — not on queueing —
   this phase is order-independent and parallel-safe.

2. **Replay** — a serial discrete-event pass replays the queueing:
   arrivals enter the :class:`~repro.fleet.queue.PendingJobQueue`
   (earliest deadline first), and whenever a node is idle the
   dispatcher places the most urgent pending job on the
   least-contended node (:class:`~repro.fleet.tracker.NodeTracker`).
   Completion times, queue waits, deadline verdicts and per-node
   energy/thermal state all come out of this pass.

The split keeps the expensive part embarrassingly parallel while the
scheduling decisions stay strictly sequential and reproducible: the
same seed yields a byte-identical :class:`~repro.fleet.metrics.FleetResult`
export regardless of worker count.
"""

from __future__ import annotations

import heapq
from functools import partial
from typing import Callable, Sequence

import numpy as np

from ..baselines.governor import UtilizationGovernor
from ..baselines.pcstall import PCSTALLPolicy
from ..core.controller import SSMDVFSController
from ..core.guarded import GuardedController
from ..core.policy import ModelOraclePolicy, StaticPolicy
from ..errors import FleetError
from ..gpu.arch import GPUArchConfig
from ..gpu.cluster import step_vector_for
from ..gpu.fused import (FusedCampaignEngine, SharedContextCache,
                         dump_shared, fuse_groups, release_shared)
from ..gpu.interval_model import SolutionCache
from ..gpu.simulator import DEFAULT_EPOCH_S, GPUSimulator
from ..parallel import (CampaignCheckpoint, CampaignStats, derive_seed,
                        parallel_map)
from ..power.model import PowerModel
from .jobs import Job
from .metrics import FleetResult, JobOutcome
from .queue import PendingJobQueue
from .tracker import NodeTracker, ThermalConfig

#: Policy names accepted by :func:`policy_factory` (the CLI choices).
FLEET_POLICIES = ("ssmdvfs", "ssmdvfs-guarded", "ssmdvfs-chipwide",
                  "pcstall", "governor", "oracle", "static")


def _guarded_ssmdvfs(model, preset: float):
    """Factory body for the guarded per-node controller (picklable)."""
    return GuardedController(SSMDVFSController(model, preset))


def policy_factory(name: str, *, preset: float = 0.10, model=None,
                   level: int | None = None) -> Callable[[], object]:
    """A picklable zero-arg factory for one per-node policy.

    ``ssmdvfs*`` variants need a trained ``model``; ``static`` needs a
    ``level``.  The returned factory builds a *fresh* policy per job,
    matching the evaluation runner's fresh-policy-per-run rule.
    """
    if name in ("ssmdvfs", "ssmdvfs-guarded", "ssmdvfs-chipwide"):
        if model is None:
            raise FleetError(f"policy {name!r} needs a trained model")
        if name == "ssmdvfs":
            return partial(SSMDVFSController, model, preset)
        if name == "ssmdvfs-guarded":
            return partial(_guarded_ssmdvfs, model, preset)
        return partial(SSMDVFSController, model, preset, per_cluster=False)
    if name == "pcstall":
        return partial(PCSTALLPolicy, preset)
    if name == "governor":
        return UtilizationGovernor
    if name == "oracle":
        return partial(ModelOraclePolicy, preset)
    if name == "static":
        if level is None:
            raise FleetError("policy 'static' needs a level")
        return partial(StaticPolicy, level)
    raise FleetError(f"unknown fleet policy {name!r}; "
                     f"expected one of {FLEET_POLICIES}")


def _simulate_job(task: tuple) -> tuple[float, float, int, float,
                                        dict[str, int]]:
    """Process-pool unit: run one job's kernel under a fresh controller.

    Returns ``(service_s, energy_j, epochs, mean_level, counters)``.
    The mean operating level feeds the node tracker's frequency state;
    the policy's observability counters travel back for ``--stats``.
    """
    factory, kernel, arch, power_model, seed, epoch_s = task
    policy = factory()
    simulator = GPUSimulator(arch, kernel, power_model, seed=seed,
                             epoch_s=epoch_s)
    result = simulator.run(policy, keep_records=True)
    if result.records:
        mean_level = float(np.mean([np.mean(r.levels)
                                    for r in result.records]))
    else:
        mean_level = float(arch.vf_table.default_level)
    counters_fn = getattr(policy, "observability_counters", None)
    counters = counters_fn() if callable(counters_fn) else {}
    return (result.time_s, result.energy_j, result.epochs, mean_level,
            counters)


#: Per-process cache of shared fleet contexts, so a pool worker
#: attaches/unpickles each campaign's shared weights once, not per group.
_FLEET_CONTEXTS = SharedContextCache()


def _fused_simulate_group(task: tuple) -> tuple[list[tuple], dict[str, int]]:
    """Process-pool unit of a fused fleet phase 1: one job group.

    ``task`` is ``(context_ref, entries)`` where the context (policy
    factory, deduplicated kernel list, arch, power model, epoch length
    — model weights in shared memory) ships once per campaign and each
    entry is a small ``(kernel_index, seed)`` pair.  The group's jobs
    co-simulate in lockstep through :class:`FusedCampaignEngine`,
    sharing one interval-solution cache; each outcome is exactly what
    :func:`_simulate_job` returns for that job, so phase 2's replay —
    and the exported ``FleetResult`` — stay byte-identical.
    """
    ref, entries = task
    context = _FLEET_CONTEXTS.get(ref)
    factory = context["factory"]
    kernels = context["kernels"]
    shared_cache = SolutionCache(payload_builder=step_vector_for)
    engine = FusedCampaignEngine()
    for position, (kernel_index, seed) in enumerate(entries):
        simulator = GPUSimulator(
            context["arch"], kernels[kernel_index], context["power_model"],
            seed=seed, epoch_s=context["epoch_s"],
            solution_cache=shared_cache)
        engine.add_task(position, simulator, factory(), keep_records=True)
    results = engine.run()
    outcomes = []
    for task_state, result in zip(engine.tasks, results):
        if result.records:
            mean_level = float(np.mean([np.mean(r.levels)
                                        for r in result.records]))
        else:
            mean_level = float(context["arch"].vf_table.default_level)
        counters_fn = getattr(task_state.policy, "observability_counters",
                              None)
        counters = counters_fn() if callable(counters_fn) else {}
        outcomes.append((result.time_s, result.energy_j, result.epochs,
                         mean_level, counters))
    return outcomes, dict(engine.counters)


class ClusterScheduler:
    """Place an arrival trace onto N simulated GPUs, one policy per node."""

    def __init__(self, arch: GPUArchConfig, factory: Callable[[], object],
                 *, num_nodes: int, policy_name: str = "policy",
                 power_model: PowerModel | None = None, seed: int = 0,
                 epoch_s: float = DEFAULT_EPOCH_S,
                 thermal: ThermalConfig | None = None,
                 workers: int | None = None,
                 stats: CampaignStats | None = None,
                 checkpoint: CampaignCheckpoint | None = None,
                 retries: int = 2, timeout_s: float | None = None,
                 fused: bool = False, fuse_width: int = 8) -> None:
        if num_nodes < 1:
            raise FleetError("a fleet needs at least one node")
        self.arch = arch
        self.factory = factory
        self.num_nodes = int(num_nodes)
        self.policy_name = policy_name
        self.power_model = power_model or PowerModel.scaled_for(
            arch.num_clusters)
        self.seed = int(seed)
        self.epoch_s = float(epoch_s)
        self.thermal = thermal
        self.workers = workers
        self.stats = stats if stats is not None else CampaignStats()
        self.checkpoint = checkpoint
        self.retries = retries
        self.timeout_s = timeout_s
        self.fused = fused
        self.fuse_width = int(fuse_width)

    # ------------------------------------------------------------------
    def _simulate(self, jobs: Sequence[Job]) -> list[tuple]:
        """Phase 1: per-job simulations through the campaign layer.

        With ``fused`` set, jobs co-simulate in lockstep groups of
        ``fuse_width`` through the fused campaign engine; per-job
        outcomes are bit-identical to the serial fan-out (same seeds,
        same records), so the phase-2 replay and the exported fleet
        result do not change byte for byte.
        """
        if self.fused:
            kernels: list = []
            kernel_index: dict[int, int] = {}
            entries = []
            for job in jobs:
                index = kernel_index.get(id(job.kernel))
                if index is None:
                    index = kernel_index[id(job.kernel)] = len(kernels)
                    kernels.append(job.kernel)
                entries.append((index, derive_seed(self.seed, "fleet-job",
                                                   job.job_id)))
            context = {"factory": self.factory, "kernels": kernels,
                       "arch": self.arch, "power_model": self.power_model,
                       "epoch_s": self.epoch_s}
            ref, block = dump_shared(context)
            groups = fuse_groups(entries, self.fuse_width)
            try:
                group_results = parallel_map(
                    _fused_simulate_group,
                    [(ref, group) for group in groups],
                    workers=self.workers, stats=self.stats,
                    stage="fleet-simulate", checkpoint=self.checkpoint,
                    retries=self.retries, timeout_s=self.timeout_s)
            finally:
                release_shared(block)
            outcomes = []
            for group_outcomes, fused_counters in group_results:
                outcomes.extend(group_outcomes)
                self.stats.merge_counters(fused_counters)
            self.stats.count("fused_groups", len(groups))
            self.stats.count("fused_shared_bytes", ref.shared_bytes)
        else:
            tasks = [(self.factory, job.kernel, self.arch, self.power_model,
                      derive_seed(self.seed, "fleet-job", job.job_id),
                      self.epoch_s)
                     for job in jobs]
            outcomes = parallel_map(_simulate_job, tasks,
                                    workers=self.workers, stats=self.stats,
                                    stage="fleet-simulate",
                                    checkpoint=self.checkpoint,
                                    retries=self.retries,
                                    timeout_s=self.timeout_s)
        for *_, counters in outcomes:
            self.stats.merge_counters(counters)
        return outcomes

    def run(self, jobs: Sequence[Job], trace_name: str = "trace"
            ) -> FleetResult:
        """Replay a job stream over the fleet; returns the fleet result."""
        jobs = sorted(jobs, key=lambda j: (j.arrival_s, j.job_id))
        if not jobs:
            raise FleetError("cannot schedule an empty job stream")
        simulated = self._simulate(jobs)
        service = {job.job_id: outcome
                   for job, outcome in zip(jobs, simulated)}

        with self.stats.stage("fleet-replay", tasks=len(jobs), workers=1,
                              mode="serial"):
            result = self._replay(jobs, service, trace_name)
        self.stats.count("fleet_jobs", len(jobs))
        self.stats.count("fleet_slo_violations", result.violations())
        return result

    # ------------------------------------------------------------------
    def _replay(self, jobs: list[Job], service: dict[int, tuple],
                trace_name: str) -> FleetResult:
        """Phase 2: serial discrete-event replay of queueing + placement."""
        tracker = NodeTracker(self.num_nodes, thermal=self.thermal)
        queue = PendingJobQueue()
        outcomes: list[JobOutcome] = []
        #: (finish_s, job_id) min-heap of in-flight completions.
        running: list[tuple[float, int]] = []
        pending_meta: dict[int, tuple[Job, int, float]] = {}
        arrival_index = 0

        def dispatch(now_s: float) -> None:
            """Place pending jobs on idle nodes, most urgent first."""
            while queue and tracker.idle_nodes(now_s):
                job = queue.pop()
                node = tracker.least_contended(now_s)
                service_s, energy_j, epochs, mean_level, _ = \
                    service[job.job_id]
                start_s = max(now_s, node.free_at_s)
                finish_s = start_s + service_s
                tracker.assign(node, job, start_s, finish_s)
                heapq.heappush(running, (finish_s, job.job_id))
                pending_meta[job.job_id] = (job, node.node_id, start_s)
                self.stats.count("fleet_dispatches")

        while arrival_index < len(jobs) or queue or running:
            next_arrival = (jobs[arrival_index].arrival_s
                            if arrival_index < len(jobs) else float("inf"))
            next_finish = running[0][0] if running else float("inf")
            if next_arrival <= next_finish:
                now_s = next_arrival
                queue.push(jobs[arrival_index])
                arrival_index += 1
            else:
                now_s = next_finish
                _, job_id = heapq.heappop(running)
                job, node_id, start_s = pending_meta.pop(job_id)
                service_s, energy_j, epochs, mean_level, _ = service[job_id]
                node = tracker.nodes[node_id]
                tracker.complete(node, now_s, service_s, energy_j,
                                 mean_level)
                outcomes.append(JobOutcome(
                    job_id=job.job_id, name=job.name,
                    job_class=job.job_class, node_id=node_id,
                    arrival_s=job.arrival_s, start_s=start_s,
                    finish_s=now_s, service_s=service_s,
                    energy_j=energy_j, epochs=epochs,
                    mean_level=mean_level, deadline_s=job.deadline_s))
            dispatch(now_s)

        outcomes.sort(key=lambda o: o.job_id)
        return FleetResult(
            policy_name=self.policy_name, trace_name=trace_name,
            seed=self.seed, num_nodes=self.num_nodes, outcomes=outcomes,
            node_summaries=tracker.to_payload(),
            peak_queue_depth=queue.peak_depth)
