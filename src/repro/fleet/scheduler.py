"""Cluster scheduler: an arrival trace over per-GPU DVFS controllers.

Two-phase, deterministic fleet replay:

1. **Simulate** — every job is an independent (kernel, policy, seed)
   simulation: a fresh per-node controller drives a fresh
   :class:`~repro.gpu.simulator.GPUSimulator` built from a stable
   per-job seed (:func:`repro.parallel.derive_seed`).  The phase fans
   out over the resilient campaign layer
   (:func:`repro.parallel.parallel_map`), so hundreds of simulated GPUs
   reuse the retry/quarantine/checkpoint machinery and the ``--stats``
   counters of every other campaign in the repo.  Because service time
   and energy depend only on the job's own seed — not on queueing —
   this phase is order-independent and parallel-safe.

2. **Replay** — a serial discrete-event pass replays the queueing:
   arrivals enter the :class:`~repro.fleet.queue.PendingJobQueue`
   (earliest deadline first), and whenever a node is idle the
   dispatcher places the most urgent pending job on the
   least-contended node (:class:`~repro.fleet.tracker.NodeTracker`).
   Completion times, queue waits, deadline verdicts and per-node
   energy/thermal state all come out of this pass.

Since the fleet-resilience layer, the replay also consumes a seeded
:class:`~repro.faults.NodeFaultPlan`: node **crashes** and detected
**hangs** quarantine the node and preempt its in-flight job, which is
requeued from its last checkpoint (work past the checkpoint boundary
is lost, a restart overhead is paid on re-dispatch — see
:class:`MigrationConfig`) and resumed on another node.  **Thermal
runaway** and **sensor-corruption storms** degrade the node in the
health FSM — still placeable, but deprioritized, and jobs dispatched
into a storm window run stretched by the storm's slowdown factor (the
guarded controller rides its fallback level through the corruption).
A storm striking an already-degraded node escalates to quarantine.
When admission control is enabled, throughput-class jobs whose
deadline has become unmeetable with the surviving capacity are shed
deterministically and accounted as :class:`~repro.fleet.metrics.ShedJob`
records, never as SLO violations; jobs stranded by a fleet-wide
permanent outage are shed too, so ``completed + shed == submitted``
always holds.

The split keeps the expensive part embarrassingly parallel while the
scheduling decisions stay strictly sequential and reproducible: the
same seed yields a byte-identical :class:`~repro.fleet.metrics.FleetResult`
export regardless of worker count — faults, migrations and shedding
included, because the fault train and every replay decision derive
only from the seed and the phase-1 outcomes.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from functools import partial
from typing import Callable, Sequence

import numpy as np

from ..baselines.governor import UtilizationGovernor
from ..baselines.pcstall import PCSTALLPolicy
from ..core.controller import SSMDVFSController
from ..core.guarded import GuardedController
from ..core.policy import ModelOraclePolicy, StaticPolicy
from ..errors import FleetError, FleetFaultError
from ..faults import NodeFaultPlan
from ..gpu.arch import GPUArchConfig
from ..gpu.cluster import quantum_row_for
from ..gpu.fused import (FusedCampaignEngine, SharedContextCache,
                         dump_shared, fuse_groups, release_shared)
from ..gpu.interval_model import SolutionCache
from ..gpu.simulator import DEFAULT_EPOCH_S, GPUSimulator
from ..parallel import (CampaignCheckpoint, CampaignStats, derive_seed,
                        parallel_map)
from ..power.model import PowerModel
from .jobs import Job
from .metrics import FleetResult, JobOutcome, ShedJob
from .queue import AdmissionConfig, PendingJobQueue
from .tracker import (DEGRADED, POLICY_COUNTER_PREFIXES, QUARANTINED,
                      HealthPolicy, NodeTracker, ThermalConfig)

#: Policy names accepted by :func:`policy_factory` (the CLI choices).
FLEET_POLICIES = ("ssmdvfs", "ssmdvfs-guarded", "ssmdvfs-chipwide",
                  "pcstall", "governor", "oracle", "static")


def _guarded_ssmdvfs(model, preset: float):
    """Factory body for the guarded per-node controller (picklable)."""
    return GuardedController(SSMDVFSController(model, preset))


def policy_factory(name: str, *, preset: float = 0.10, model=None,
                   level: int | None = None) -> Callable[[], object]:
    """A picklable zero-arg factory for one per-node policy.

    ``ssmdvfs*`` variants need a trained ``model``; ``static`` needs a
    ``level``.  The returned factory builds a *fresh* policy per job,
    matching the evaluation runner's fresh-policy-per-run rule.
    """
    if name in ("ssmdvfs", "ssmdvfs-guarded", "ssmdvfs-chipwide"):
        if model is None:
            raise FleetError(f"policy {name!r} needs a trained model")
        if name == "ssmdvfs":
            return partial(SSMDVFSController, model, preset)
        if name == "ssmdvfs-guarded":
            return partial(_guarded_ssmdvfs, model, preset)
        return partial(SSMDVFSController, model, preset, per_cluster=False)
    if name == "pcstall":
        return partial(PCSTALLPolicy, preset)
    if name == "governor":
        return UtilizationGovernor
    if name == "oracle":
        return partial(ModelOraclePolicy, preset)
    if name == "static":
        if level is None:
            raise FleetError("policy 'static' needs a level")
        return partial(StaticPolicy, level)
    raise FleetError(f"unknown fleet policy {name!r}; "
                     f"expected one of {FLEET_POLICIES}")


def _simulate_job(task: tuple) -> tuple[float, float, int, float,
                                        dict[str, int]]:
    """Process-pool unit: run one job's kernel under a fresh controller.

    Returns ``(service_s, energy_j, epochs, mean_level, counters)``.
    The mean operating level feeds the node tracker's frequency state;
    the policy's observability counters travel back for ``--stats``.
    """
    factory, kernel, arch, power_model, seed, epoch_s = task
    policy = factory()
    simulator = GPUSimulator(arch, kernel, power_model, seed=seed,
                             epoch_s=epoch_s)
    result = simulator.run(policy, keep_records=True)
    if result.records:
        mean_level = float(np.mean([np.mean(r.levels)
                                    for r in result.records]))
    else:
        mean_level = float(arch.vf_table.default_level)
    counters_fn = getattr(policy, "observability_counters", None)
    counters = counters_fn() if callable(counters_fn) else {}
    return (result.time_s, result.energy_j, result.epochs, mean_level,
            counters)


#: Per-process cache of shared fleet contexts, so a pool worker
#: attaches/unpickles each campaign's shared weights once, not per group.
_FLEET_CONTEXTS = SharedContextCache()


def _fused_simulate_group(task: tuple) -> tuple[list[tuple], dict[str, int]]:
    """Process-pool unit of a fused fleet phase 1: one job group.

    ``task`` is ``(context_ref, entries)`` where the context (policy
    factory, deduplicated kernel list, arch, power model, epoch length
    — model weights in shared memory) ships once per campaign and each
    entry is a small ``(kernel_index, seed)`` pair.  The group's jobs
    co-simulate in lockstep through :class:`FusedCampaignEngine`,
    sharing one interval-solution cache; each outcome is exactly what
    :func:`_simulate_job` returns for that job, so phase 2's replay —
    and the exported ``FleetResult`` — stay byte-identical.
    """
    ref, entries = task
    context = _FLEET_CONTEXTS.get(ref)
    factory = context["factory"]
    kernels = context["kernels"]
    shared_cache = SolutionCache(payload_builder=quantum_row_for)
    engine = FusedCampaignEngine()
    for position, (kernel_index, seed) in enumerate(entries):
        simulator = GPUSimulator(
            context["arch"], kernels[kernel_index], context["power_model"],
            seed=seed, epoch_s=context["epoch_s"],
            solution_cache=shared_cache)
        engine.add_task(position, simulator, factory(), keep_records=True)
    results = engine.run()
    outcomes = []
    for task_state, result in zip(engine.tasks, results):
        if result.records:
            mean_level = float(np.mean([np.mean(r.levels)
                                        for r in result.records]))
        else:
            mean_level = float(context["arch"].vf_table.default_level)
        counters_fn = getattr(task_state.policy, "observability_counters",
                              None)
        counters = counters_fn() if callable(counters_fn) else {}
        outcomes.append((result.time_s, result.energy_j, result.epochs,
                         mean_level, counters))
    return outcomes, dict(engine.counters)


@dataclass(frozen=True)
class MigrationConfig:
    """Checkpointed-migration and hang-detection knobs of the replay.

    Jobs checkpoint every ``checkpoint_interval_s`` of service-time
    progress; a preemption discards work past the last checkpoint
    boundary and re-dispatch pays ``restart_overhead_s`` before the
    job resumes.  ``hang_detect_s`` is the heartbeat deadline: a hung
    node is only discovered (and its frozen job preempted) that long
    after progress stops.  A job preempted more than ``max_migrations``
    times is shed with reason ``migration_limit`` instead of ping-
    ponging across a collapsing fleet forever.
    """

    checkpoint_interval_s: float = 20e-6
    restart_overhead_s: float = 5e-6
    max_migrations: int = 8
    hang_detect_s: float = 50e-6

    def __post_init__(self) -> None:
        if self.checkpoint_interval_s <= 0:
            raise FleetFaultError("checkpoint_interval_s must be positive")
        if self.restart_overhead_s < 0:
            raise FleetFaultError("restart_overhead_s cannot be negative")
        if self.max_migrations < 0:
            raise FleetFaultError("max_migrations cannot be negative")
        if self.hang_detect_s <= 0:
            raise FleetFaultError("hang_detect_s must be positive")


#: Deterministic same-instant event ordering of the replay heap:
#: arrivals enter the queue first, completions land next, faults and
#: hang-detections strike third, timed recoveries resolve last.
_ORDER_ARRIVAL, _ORDER_FINISH, _ORDER_FAULT, _ORDER_RECOVER = 0, 1, 2, 3


@dataclass
class _JobProgress:
    """Mutable replay-side progress of one job across migrations."""

    remaining_s: float
    enqueued_at: float
    migrations: int = 0
    lost_work_s: float = 0.0
    overhead_s: float = 0.0
    queued_s: float = 0.0
    first_start_s: float | None = None
    #: Energy already folded into nodes this job was preempted off.
    energy_absorbed_j: float = 0.0


@dataclass
class _Assignment:
    """One dispatch of a job onto a node (invalidated by preemption)."""

    job: Job
    node_id: int
    start_s: float
    overhead_s: float
    stretch: float
    generation: int
    remaining_at_start_s: float


class ClusterScheduler:
    """Place an arrival trace onto N simulated GPUs, one policy per node."""

    def __init__(self, arch: GPUArchConfig, factory: Callable[[], object],
                 *, num_nodes: int, policy_name: str = "policy",
                 power_model: PowerModel | None = None, seed: int = 0,
                 epoch_s: float = DEFAULT_EPOCH_S,
                 thermal: ThermalConfig | None = None,
                 workers: int | None = None,
                 stats: CampaignStats | None = None,
                 checkpoint: CampaignCheckpoint | None = None,
                 retries: int = 2, timeout_s: float | None = None,
                 fused: bool = False, fuse_width: int = 8,
                 fault_plan: NodeFaultPlan | None = None,
                 migration: MigrationConfig | None = None,
                 admission: AdmissionConfig | None = None,
                 health: HealthPolicy | None = None) -> None:
        if num_nodes < 1:
            raise FleetError("a fleet needs at least one node")
        if fault_plan is not None:
            fault_plan.validate_for(num_nodes)
        self.arch = arch
        self.factory = factory
        self.num_nodes = int(num_nodes)
        self.policy_name = policy_name
        self.power_model = power_model or PowerModel.scaled_for(
            arch.num_clusters)
        self.seed = int(seed)
        self.epoch_s = float(epoch_s)
        self.thermal = thermal
        self.workers = workers
        self.stats = stats if stats is not None else CampaignStats()
        self.checkpoint = checkpoint
        self.retries = retries
        self.timeout_s = timeout_s
        self.fused = fused
        self.fuse_width = int(fuse_width)
        self.fault_plan = fault_plan or NodeFaultPlan()
        self.migration = migration or MigrationConfig()
        self.admission = admission or AdmissionConfig()
        self.health = health

    # ------------------------------------------------------------------
    def _simulate(self, jobs: Sequence[Job]) -> list[tuple]:
        """Phase 1: per-job simulations through the campaign layer.

        With ``fused`` set, jobs co-simulate in lockstep groups of
        ``fuse_width`` through the fused campaign engine; per-job
        outcomes are bit-identical to the serial fan-out (same seeds,
        same records), so the phase-2 replay and the exported fleet
        result do not change byte for byte.
        """
        if self.fused:
            kernels: list = []
            kernel_index: dict[int, int] = {}
            entries = []
            for job in jobs:
                index = kernel_index.get(id(job.kernel))
                if index is None:
                    index = kernel_index[id(job.kernel)] = len(kernels)
                    kernels.append(job.kernel)
                entries.append((index, derive_seed(self.seed, "fleet-job",
                                                   job.job_id)))
            context = {"factory": self.factory, "kernels": kernels,
                       "arch": self.arch, "power_model": self.power_model,
                       "epoch_s": self.epoch_s}
            ref, block = dump_shared(context)
            groups = fuse_groups(entries, self.fuse_width)
            try:
                group_results = parallel_map(
                    _fused_simulate_group,
                    [(ref, group) for group in groups],
                    workers=self.workers, stats=self.stats,
                    stage="fleet-simulate", checkpoint=self.checkpoint,
                    retries=self.retries, timeout_s=self.timeout_s)
            finally:
                release_shared(block)
            outcomes = []
            for group_outcomes, fused_counters in group_results:
                outcomes.extend(group_outcomes)
                self.stats.merge_counters(fused_counters)
            self.stats.count("fused_groups", len(groups))
            self.stats.count("fused_shared_bytes", ref.shared_bytes)
        else:
            tasks = [(self.factory, job.kernel, self.arch, self.power_model,
                      derive_seed(self.seed, "fleet-job", job.job_id),
                      self.epoch_s)
                     for job in jobs]
            outcomes = parallel_map(_simulate_job, tasks,
                                    workers=self.workers, stats=self.stats,
                                    stage="fleet-simulate",
                                    checkpoint=self.checkpoint,
                                    retries=self.retries,
                                    timeout_s=self.timeout_s)
        for *_, counters in outcomes:
            self.stats.merge_counters(counters)
        return outcomes

    def run(self, jobs: Sequence[Job], trace_name: str = "trace"
            ) -> FleetResult:
        """Replay a job stream over the fleet; returns the fleet result."""
        jobs = sorted(jobs, key=lambda j: (j.arrival_s, j.job_id))
        if not jobs:
            raise FleetError("cannot schedule an empty job stream")
        simulated = self._simulate(jobs)
        service = {job.job_id: outcome
                   for job, outcome in zip(jobs, simulated)}

        with self.stats.stage("fleet-replay", tasks=len(jobs), workers=1,
                              mode="serial"):
            result = self._replay(jobs, service, trace_name)
        self.stats.count("fleet_jobs", len(jobs))
        self.stats.count("fleet_slo_violations", result.violations())
        self.stats.merge_counters(result.counters)
        return result

    # ------------------------------------------------------------------
    def _policy_counters(self, service: dict[int, tuple]) -> dict[str, int]:
        """Aggregate resilience-relevant policy counters over every job."""
        totals: dict[str, int] = {}
        for job_id in sorted(service):
            for name, amount in (service[job_id][4] or {}).items():
                if name.startswith(POLICY_COUNTER_PREFIXES):
                    totals[name] = totals.get(name, 0) + int(amount)
        return totals

    def _replay(self, jobs: list[Job], service: dict[int, tuple],
                trace_name: str) -> FleetResult:
        """Phase 2: serial discrete-event replay of queueing, placement,
        node faults, checkpointed migration, and load shedding."""
        tracker = NodeTracker(self.num_nodes, thermal=self.thermal,
                              health=self.health)
        queue = PendingJobQueue()
        migration = self.migration
        outcomes: list[JobOutcome] = []
        shed: list[ShedJob] = []
        counters: dict[str, int] = {}
        #: Unified event heap: (time, order, seq, kind, payload).
        events: list[tuple] = []
        seq = 0
        #: Active assignment per job id / occupying job per node id.
        active: dict[int, _Assignment] = {}
        node_job: dict[int, int] = {}
        generations: dict[int, int] = {}
        progress = {job.job_id: _JobProgress(
            remaining_s=service[job.job_id][0], enqueued_at=job.arrival_s)
            for job in jobs}

        def count(name: str, amount: int = 1) -> None:
            counters[name] = counters.get(name, 0) + amount

        def push_event(at_s: float, order: int, kind: str,
                       payload: object) -> None:
            nonlocal seq
            heapq.heappush(events, (at_s, order, seq, kind, payload))
            seq += 1

        def energy_rate(job_id: int) -> float:
            service_s, energy_j = service[job_id][0], service[job_id][1]
            return energy_j / service_s if service_s > 0 else 0.0

        def shed_job(job: Job, now_s: float, reason: str) -> None:
            shed.append(ShedJob(
                job_id=job.job_id, name=job.name, job_class=job.job_class,
                arrival_s=job.arrival_s, deadline_s=job.deadline_s,
                expected_s=job.expected_s, shed_s=now_s, reason=reason))
            count("shed_jobs")
            count(f"shed_{reason}")

        def preempt(job_id: int, now_s: float, upto_s: float) -> None:
            """Checkpointed preemption: keep floored progress, requeue.

            ``upto_s`` is when real progress stopped (the fault time for
            a crash, the hang onset for a detected hang) — work past it
            never happened, work past the last checkpoint is lost.
            """
            assignment = active.pop(job_id)
            node_job.pop(assignment.node_id, None)
            node = tracker.nodes[assignment.node_id]
            state = progress[job_id]
            elapsed = max(0.0, upto_s - assignment.start_s)
            overhead_used = min(elapsed, assignment.overhead_s)
            work_wall = max(0.0, elapsed - assignment.overhead_s)
            executed = min(assignment.remaining_at_start_s,
                           work_wall / assignment.stretch)
            interval = migration.checkpoint_interval_s
            kept = min(executed,
                       math.floor(executed / interval + 1e-9) * interval)
            state.remaining_s = max(0.0,
                                    assignment.remaining_at_start_s - kept)
            state.lost_work_s += executed - kept
            state.overhead_s += overhead_used
            state.migrations += 1
            segment_energy = energy_rate(job_id) * (overhead_used + executed)
            state.energy_absorbed_j += segment_energy
            # The node was wedged/occupied only until progress stopped;
            # its committed horizon resets to now (quarantine will push
            # it to the outage end).
            node.free_at_s = now_s
            tracker.absorb_partial(node, now_s, busy_s=elapsed,
                                   energy_j=segment_energy)
            count("migration_preemptions")
            queue.push(assignment.job, requeued=True)
            state.enqueued_at = now_s
            count("migration_requeues")

        def dispatch(now_s: float) -> None:
            """Place pending jobs on idle placeable nodes, urgent first,
            shedding unmeetable / migration-exhausted jobs on the way."""
            while queue and tracker.idle_nodes(now_s):
                job = queue.pop()
                state = progress[job.job_id]
                service_s = service[job.job_id][0]
                if state.migrations > migration.max_migrations:
                    shed_job(job, now_s, "migration_limit")
                    continue
                fraction = (state.remaining_s / service_s
                            if service_s > 0 else 1.0)
                estimate_s = job.expected_s * fraction
                if self.admission.sheddable(job, now_s, estimate_s):
                    shed_job(job, now_s, "unmeetable")
                    continue
                node = tracker.least_contended(now_s, idle_only=True)
                start_s = max(now_s, node.free_at_s)
                overhead = (migration.restart_overhead_s
                            if state.migrations else 0.0)
                stretch = (node.storm_slowdown
                           if node.storm_until > start_s + 1e-15 else 1.0)
                finish_s = start_s + overhead + state.remaining_s * stretch
                tracker.assign(node, job, start_s, finish_s)
                generation = generations.get(job.job_id, 0) + 1
                generations[job.job_id] = generation
                active[job.job_id] = _Assignment(
                    job=job, node_id=node.node_id, start_s=start_s,
                    overhead_s=overhead, stretch=stretch,
                    generation=generation,
                    remaining_at_start_s=state.remaining_s)
                node_job[node.node_id] = job.job_id
                if state.first_start_s is None:
                    state.first_start_s = start_s
                state.queued_s += start_s - state.enqueued_at
                push_event(finish_s, _ORDER_FINISH, "finish",
                           (job.job_id, generation))
                self.stats.count("fleet_dispatches")

        def complete(job_id: int, now_s: float) -> None:
            assignment = active.pop(job_id)
            node_job.pop(assignment.node_id, None)
            node = tracker.nodes[assignment.node_id]
            state = progress[job_id]
            job = assignment.job
            # The restart overhead of the segment that just completed was
            # fully paid; fold it in so the outcome (and its energy bill)
            # covers every segment, not just preempted ones.
            state.overhead_s += assignment.overhead_s
            service_s, energy_j, epochs, mean_level, job_counters = \
                service[job_id]
            total_energy = energy_j + energy_rate(job_id) * (
                state.lost_work_s + state.overhead_s)
            tracker.complete(node, now_s, now_s - assignment.start_s,
                             total_energy - state.energy_absorbed_j,
                             mean_level)
            tracker.merge_policy_counters(node, job_counters)
            if now_s > job.deadline_s:
                tracker.note_deadline_miss(node)
            else:
                tracker.note_clean_completion(node, now_s)
            outcomes.append(JobOutcome(
                job_id=job.job_id, name=job.name, job_class=job.job_class,
                node_id=assignment.node_id, arrival_s=job.arrival_s,
                start_s=state.first_start_s, finish_s=now_s,
                service_s=service_s, energy_j=total_energy, epochs=epochs,
                mean_level=mean_level, deadline_s=job.deadline_s,
                migrations=state.migrations,
                lost_work_s=state.lost_work_s,
                overhead_s=state.overhead_s, queued_s=state.queued_s))

        for job in jobs:
            push_event(job.arrival_s, _ORDER_ARRIVAL, "arrival", job)
        for fault in self.fault_plan:
            push_event(fault.at_s, _ORDER_FAULT, "fault", fault)

        now_s = 0.0
        while events:
            now_s, _, _, kind, payload = heapq.heappop(events)
            if kind == "arrival":
                queue.push(payload)
            elif kind == "finish":
                job_id, generation = payload
                assignment = active.get(job_id)
                if (assignment is None
                        or assignment.generation != generation):
                    pass  # stale: the job was preempted off this node
                elif tracker.nodes[assignment.node_id].hung_since is not None:
                    # The node hung mid-job: no completion heartbeat
                    # arrives, so the node stays logically occupied
                    # until the hang-detection deadline preempts it.
                    node = tracker.nodes[assignment.node_id]
                    node.free_at_s = max(
                        node.free_at_s,
                        node.hung_since + migration.hang_detect_s)
                else:
                    complete(job_id, now_s)
            elif kind == "fault":
                self._apply_fault(payload, now_s, tracker, node_job,
                                  preempt, push_event, count)
            elif kind == "detect":
                node_id, hung_at, duration_s = payload
                node = tracker.nodes[node_id]
                if node.hung_since == hung_at:
                    occupant = node_job.get(node_id)
                    if occupant is not None:
                        preempt(occupant, now_s, upto_s=hung_at)
                    count("fleet_hang_detections")
                    tracker.quarantine(node, now_s, now_s + duration_s,
                                       "hang")
                    push_event(node.quarantined_until, _ORDER_RECOVER,
                               "recover", node_id)
            elif kind == "recover":
                node = tracker.nodes[payload]
                tracker.end_outage(node, now_s)
                tracker.clear_degradation(node, now_s)
            dispatch(now_s)

        while queue:  # no placeable node left and none will recover
            shed_job(queue.pop(), now_s, "stranded")

        counters.update(queue.counters())
        for name, amount in tracker.counters.items():
            count(name, amount)
        outcomes.sort(key=lambda o: o.job_id)
        shed.sort(key=lambda s: s.job_id)
        return FleetResult(
            policy_name=self.policy_name, trace_name=trace_name,
            seed=self.seed, num_nodes=self.num_nodes, outcomes=outcomes,
            node_summaries=tracker.to_payload(),
            peak_queue_depth=queue.peak_depth, shed=shed,
            submitted=len(jobs), counters=dict(sorted(counters.items())),
            policy_counters=self._policy_counters(service),
            fault_events=self.fault_plan.to_payload())

    def _apply_fault(self, event, now_s: float, tracker: NodeTracker,
                     node_job: dict[int, int], preempt, push_event,
                     count) -> None:
        """Strike one node-fault event against the live replay state."""
        node = tracker.nodes[event.node_id]
        count(f"fleet_fault_{event.kind}")
        if event.kind == "crash":
            occupant = node_job.get(event.node_id)
            if occupant is not None:
                preempt(occupant, now_s, upto_s=now_s)
            tracker.quarantine(node, now_s, event.recovery_s, "crash")
            push_event(node.quarantined_until, _ORDER_RECOVER, "recover",
                       event.node_id)
        elif event.kind == "hang":
            if node.health != QUARANTINED and node.hung_since is None:
                node.hung_since = now_s
                push_event(now_s + self.migration.hang_detect_s,
                           _ORDER_FAULT, "detect",
                           (event.node_id, now_s, event.duration_s))
        elif event.kind == "thermal":
            tracker.thermal_runaway(node, now_s, event.magnitude,
                                    event.recovery_s)
            push_event(event.recovery_s, _ORDER_RECOVER, "recover",
                       event.node_id)
        else:  # sensor_storm
            node.storm_slowdown = event.magnitude
            node.storm_until = max(node.storm_until, event.recovery_s)
            if node.health == DEGRADED:
                # A storm on an already-degraded node escalates: the
                # sensors cannot be trusted at all, so drain it (the
                # in-flight job, if any, finishes — only new placement
                # stops).
                tracker.quarantine(node, now_s, event.recovery_s,
                                   "storm_escalation")
                push_event(node.quarantined_until, _ORDER_RECOVER,
                           "recover", event.node_id)
            else:
                tracker.degrade(node, now_s, "storm")
                push_event(event.recovery_s, _ORDER_RECOVER, "recover",
                           event.node_id)
