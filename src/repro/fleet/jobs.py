"""Arrival-trace-driven job streams for the fleet simulator.

A fleet serves two broad classes of work: **latency-sensitive** jobs
(short kernels with tight deadlines — the interactive traffic the SLO
is written for) and **throughput** jobs (longer kernels whose deadlines
mostly guard against starvation).  :func:`build_trace` materialises a
deterministic stream of :class:`Job` records from a seeded
:class:`TraceConfig`: arrival times follow one of the builtin shapes
(Poisson ``steady``, clustered ``burst``, sinusoidally modulated
``diurnal``), each job draws a kernel from its class's duration-scaled
pool, and its deadline is its arrival time plus a per-class multiple of
the noiseless service estimate.

The offered load is expressed as a fraction of fleet capacity: a
``load`` of 0.7 over ``nodes`` GPUs sets the mean arrival rate to 70 %
of what the fleet could serve if every node were busy back to back, so
the same trace config scales from 4 simulated GPUs to hundreds without
retuning arrival rates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..errors import FleetError
from ..gpu.arch import GPUArchConfig
from ..gpu.kernels import KernelProfile
from ..workloads.suites import (estimate_default_duration, evaluation_suite,
                                scale_kernel_to_duration)

#: Job classes of the fleet workload model.
LATENCY = "latency"
THROUGHPUT = "throughput"
JOB_CLASSES = (LATENCY, THROUGHPUT)

#: Builtin arrival-trace shapes accepted by :func:`build_trace`.
BUILTIN_TRACES = ("steady", "burst", "diurnal")


@dataclass(frozen=True)
class Job:
    """One unit of fleet work: a kernel with an arrival and a deadline."""

    job_id: int
    name: str
    job_class: str
    kernel: KernelProfile
    arrival_s: float
    expected_s: float
    deadline_s: float

    @property
    def slack_s(self) -> float:
        """Deadline headroom beyond the noiseless service estimate."""
        return self.deadline_s - self.arrival_s - self.expected_s


@dataclass(frozen=True)
class TraceConfig:
    """Declarative description of one arrival trace.

    ``load`` is the offered load as a fraction of the fleet's back-to-
    back service capacity over ``nodes`` GPUs; values above 1 oversubscribe
    the fleet and force queueing (and, eventually, SLO violations).
    ``latency_fraction`` is the probability a job is latency-sensitive.
    Deadlines are ``arrival + factor * expected_service`` per class.
    """

    trace: str = "steady"
    jobs: int = 64
    nodes: int = 16
    load: float = 0.7
    latency_fraction: float = 0.6
    latency_duration_s: float = 100e-6
    throughput_duration_s: float = 400e-6
    latency_deadline_factor: float = 2.5
    throughput_deadline_factor: float = 8.0
    burst_size: int = 8
    diurnal_periods: float = 2.0
    seed: int = 0
    kernel_names: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.trace not in BUILTIN_TRACES:
            raise FleetError(f"unknown trace {self.trace!r}; "
                             f"expected one of {BUILTIN_TRACES}")
        if self.jobs < 1:
            raise FleetError("a trace needs at least one job")
        if self.nodes < 1:
            raise FleetError("a trace needs at least one node")
        if self.load <= 0.0:
            raise FleetError("offered load must be positive")
        if not 0.0 <= self.latency_fraction <= 1.0:
            raise FleetError("latency_fraction must be in [0, 1]")
        if self.latency_duration_s <= 0 or self.throughput_duration_s <= 0:
            raise FleetError("job durations must be positive")
        if (self.latency_deadline_factor <= 1.0
                or self.throughput_deadline_factor <= 1.0):
            raise FleetError("deadline factors must exceed 1 (a deadline "
                             "below the service estimate is unmeetable)")
        if self.burst_size < 1:
            raise FleetError("burst_size must be >= 1")
        if self.diurnal_periods <= 0:
            raise FleetError("diurnal_periods must be positive")


def _kernel_pool(arch: GPUArchConfig, duration_s: float,
                 names: tuple[str, ...]) -> list[tuple[KernelProfile, float]]:
    """(scaled kernel, noiseless service estimate) pairs for one class."""
    kernels = evaluation_suite()
    if names:
        kernels = [k for k in kernels if k.name in names]
        if not kernels:
            raise FleetError(f"no evaluation kernels match {names!r}")
    pool = []
    for kernel in kernels:
        scaled = scale_kernel_to_duration(kernel, arch, duration_s)
        pool.append((scaled, estimate_default_duration(scaled, arch)))
    return pool


def _arrival_gaps(config: TraceConfig, rng: np.random.Generator,
                  mean_gap_s: float) -> np.ndarray:
    """Inter-arrival gaps of the configured trace shape (seconds)."""
    if config.trace == "steady":
        return rng.exponential(mean_gap_s, size=config.jobs)
    if config.trace == "burst":
        # Bursts of `burst_size` near-simultaneous arrivals separated by
        # compensating idle gaps, preserving the configured mean rate.
        gaps = np.empty(config.jobs)
        for index in range(config.jobs):
            if index % config.burst_size == 0 and index > 0:
                gaps[index] = rng.exponential(
                    mean_gap_s * config.burst_size)
            else:
                gaps[index] = rng.exponential(mean_gap_s * 0.05)
        return gaps
    # Diurnal: a sinusoid modulates the instantaneous rate between
    # 0.25x and 1.75x the mean over `diurnal_periods` cycles.
    horizon = mean_gap_s * config.jobs
    gaps = np.empty(config.jobs)
    now = 0.0
    for index in range(config.jobs):
        phase = 2.0 * math.pi * config.diurnal_periods * now / horizon
        rate_scale = 1.0 + 0.75 * math.sin(phase)
        gaps[index] = rng.exponential(mean_gap_s / max(rate_scale, 0.25))
        now += gaps[index]
    return gaps


def build_trace(arch: GPUArchConfig, config: TraceConfig) -> list[Job]:
    """Materialise a deterministic job stream from a trace config.

    The same ``(arch, config)`` pair always yields the identical job
    list — arrivals, classes, kernels and deadlines — which is what
    makes a fleet replay reproducible end to end.
    """
    rng = np.random.default_rng(config.seed)
    latency_pool = _kernel_pool(arch, config.latency_duration_s,
                                config.kernel_names)
    throughput_pool = _kernel_pool(arch, config.throughput_duration_s,
                                   config.kernel_names)

    mean_service = (
        config.latency_fraction
        * float(np.mean([s for _, s in latency_pool]))
        + (1.0 - config.latency_fraction)
        * float(np.mean([s for _, s in throughput_pool])))
    # Offered load: arrivals per second = load * fleet service rate.
    mean_gap_s = mean_service / (config.nodes * config.load)
    gaps = _arrival_gaps(config, rng, mean_gap_s)

    jobs: list[Job] = []
    arrival = 0.0
    for job_id in range(config.jobs):
        arrival += float(gaps[job_id])
        if rng.random() < config.latency_fraction:
            job_class = LATENCY
            pool = latency_pool
            factor = config.latency_deadline_factor
        else:
            job_class = THROUGHPUT
            pool = throughput_pool
            factor = config.throughput_deadline_factor
        kernel, expected_s = pool[int(rng.integers(len(pool)))]
        jobs.append(Job(
            job_id=job_id,
            name=f"{job_class[:3]}-{job_id:04d}.{kernel.name}",
            job_class=job_class,
            kernel=kernel,
            arrival_s=arrival,
            expected_s=expected_s,
            deadline_s=arrival + factor * expected_s,
        ))
    return jobs
