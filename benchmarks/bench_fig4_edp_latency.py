"""Fig. 4 — normalized EDP and latency for every DVFS mechanism at
performance-loss presets of 10 % and 20 %.

Regenerates the paper's headline evaluation: PCSTALL, F-LEMMA, SSMDVFS
with and without the Calibrator, and the fully compressed SSMDVFS, over
the ~300 us evaluation suite (>50 % of kernels unseen in training).

Shape assertions (paper §V-C):
* compressed SSMDVFS improves EDP vs the default-V/f baseline
  (paper: 11.09 %),
* SSMDVFS is at least competitive with PCSTALL (paper: +13.17 % — our
  GPU surrogate's time-frequency curve is closer to PCSTALL's linear
  model than real hardware, which shrinks the analytical model's
  disadvantage; see EXPERIMENTS.md),
* SSMDVFS clearly beats the RL baseline (paper: +36.80 %),
* SSMDVFS and PCSTALL keep mean latency within the preset;
  F-LEMMA's exploration violates it on short programs.
"""

from repro.evaluation.experiments import run_fig4
from repro.core.controller import SSMDVFSController
from repro.gpu.simulator import GPUSimulator


def test_fig4_edp_latency(pipeline, eval_kernels, arch, benchmark):
    result = run_fig4(
        {"base": pipeline.models["base"],
         "pruned": pipeline.models["pruned"]},
        eval_kernels, arch, presets=(0.10, 0.20), seed=5)
    from _reporting import write_result
    write_result("fig4_edp_latency", result.render())

    headline = result.headline("ssmdvfs-pruned")
    # Direction and rough magnitude of the paper's aggregates.
    assert headline["vs_baseline"] > 0.05        # paper: 0.1109
    assert headline["vs_pcstall"] > -0.05        # paper: 0.1317
    assert headline["vs_flemma"] > 0.04          # paper: 0.3680

    for preset, comparison in result.comparisons.items():
        slack = 1.0 + preset + 0.02
        assert comparison.mean_normalized_latency("ssmdvfs-pruned") < slack
        assert comparison.mean_normalized_latency("ssmdvfs") < slack
        assert comparison.mean_normalized_latency("pcstall") < slack
        # Every SSMDVFS variant must actually save EDP on average.
        assert comparison.mean_normalized_edp("ssmdvfs-pruned") < 0.98
        # The RL baseline must trail the supervised controller.
        assert (comparison.mean_normalized_edp("ssmdvfs-pruned")
                < comparison.mean_normalized_edp("flemma"))

    # Benchmark: one online SSMDVFS decision step (counters -> levels),
    # the operation that must fit inside a 10 us epoch.
    controller = SSMDVFSController(pipeline.models["pruned"], preset=0.10)
    simulator = GPUSimulator(arch, eval_kernels[0], seed=1)
    controller.reset(simulator)
    record = simulator.step_epoch()
    benchmark(lambda: controller.decide(record))
