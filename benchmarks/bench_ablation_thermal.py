"""Ablation — thermal headroom (extension beyond the paper).

Runs the thermal RC model with leakage feedback under the baseline and
under SSMDVFS: besides EDP, microsecond DVFS lowers sustained cluster
temperature, which compounds through the leakage exponential.  This
quantifies the secondary benefit the paper's introduction alludes to
("reducing power consumption and thermal output").
"""

from repro.gpu.simulator import GPUSimulator
from repro.power.thermal import ThermalConfig, run_with_thermal
from repro.core.controller import SSMDVFSController
from repro.core.policy import StaticPolicy
from repro.evaluation.reporting import format_table

PRESET = 0.10
#: Hot ambient + high resistance: a thermally constrained deployment.
HOT_CONFIG = ThermalConfig(ambient_c=50.0, resistance_c_per_w=6.0)


def test_thermal_ablation(pipeline, eval_kernels, arch, benchmark):
    model = pipeline.model("pruned")
    rows = []
    deltas = []
    for kernel in eval_kernels[:4]:
        # Give the die time to heat: stretch the kernel 4x.
        stretched = kernel.with_iterations(kernel.iterations * 4)
        base_sim = GPUSimulator(arch, stretched, seed=13)
        base_run, base_thermal = run_with_thermal(
            base_sim, StaticPolicy(arch.vf_table.default_level), HOT_CONFIG)
        ssm_sim = GPUSimulator(arch, stretched, seed=13)
        ssm_run, ssm_thermal = run_with_thermal(
            ssm_sim, SSMDVFSController(model, PRESET), HOT_CONFIG)
        delta = (base_thermal.peak_temperature_c
                 - ssm_thermal.peak_temperature_c)
        deltas.append(delta)
        rows.append([kernel.name,
                     round(base_thermal.peak_temperature_c, 1),
                     round(ssm_thermal.peak_temperature_c, 1),
                     round(ssm_run.edp / base_run.edp, 3)])
    from _reporting import write_result
    write_result("ablation_thermal", format_table(
        ["Kernel", "peak T baseline (C)", "peak T ssmdvfs (C)",
         "normalized EDP"], rows,
        title=f"Thermal ablation (leakage feedback), preset {PRESET:.0%}"))

    # SSMDVFS must never run hotter, and must be cooler somewhere.
    assert all(delta >= -0.5 for delta in deltas)
    assert max(deltas) > 0.5

    # Benchmark: one thermal-tracker epoch update at GPU scale.
    from repro.power.thermal import ThermalTracker
    tracker = ThermalTracker(arch.num_clusters, HOT_CONFIG)
    powers = [6.0] * arch.num_clusters
    statics = [0.8] * arch.num_clusters
    benchmark(lambda: tracker.step_epoch(powers, statics, 1e-5))
