"""Robustness — counter noise and seed variance (extension).

Real 10 µs counter windows are noisy; the paper evaluates a single
simulator configuration.  This bench (a) injects multiplicative
measurement noise into the counters each controller observes and
tracks how EDP/latency degrade, and (b) sweeps simulator seeds to put
an error bar on the Fig. 4 aggregates.
"""

import numpy as np

from repro.baselines.pcstall import PCSTALLPolicy
from repro.core.controller import SSMDVFSController
from repro.core.policy import StaticPolicy
from repro.evaluation.reporting import format_table
from repro.evaluation.robustness import NoisyCountersPolicy, seed_sweep
from repro.gpu.simulator import GPUSimulator

PRESET = 0.10
NOISE_LEVELS = (0.0, 0.05, 0.10, 0.20)


def test_counter_noise_robustness(pipeline, eval_kernels, arch, benchmark):
    model = pipeline.model("pruned")
    kernels = eval_kernels[:4]
    rows = []
    summary = {}
    for sigma in NOISE_LEVELS:
        for name, factory in (
            ("ssmdvfs", lambda s=sigma: NoisyCountersPolicy(
                SSMDVFSController(model, PRESET), s, seed=21)),
            ("pcstall", lambda s=sigma: NoisyCountersPolicy(
                PCSTALLPolicy(PRESET), s, seed=21)),
        ):
            edps, lats = [], []
            for kernel in kernels:
                base = GPUSimulator(arch, kernel, seed=17).run(
                    StaticPolicy(arch.vf_table.default_level),
                    keep_records=False)
                run = GPUSimulator(arch, kernel, seed=17).run(
                    factory(), keep_records=False)
                edps.append(run.edp / base.edp)
                lats.append(run.time_s / base.time_s)
            summary[(name, sigma)] = (float(np.mean(edps)),
                                      float(np.mean(lats)))
            rows.append([name, sigma, round(summary[(name, sigma)][0], 3),
                         round(summary[(name, sigma)][1], 3)])
    from _reporting import write_result
    write_result("robustness_noise", format_table(
        ["Policy", "counter noise", "mean EDP", "mean latency"], rows,
        title=f"Counter-noise robustness, preset {PRESET:.0%}"))

    for name in ("ssmdvfs", "pcstall"):
        clean_edp, clean_lat = summary[(name, 0.0)]
        noisy_edp, noisy_lat = summary[(name, 0.20)]
        # Graceful degradation: bounded latency blow-up even at 20 %
        # counter noise, and EDP still below (or near) baseline.
        assert noisy_lat < 1.0 + 3 * PRESET
        assert noisy_edp < 1.05
        assert noisy_lat >= clean_lat - 0.05  # noise cannot *help* much

    # Seed sweep: error bars on the aggregate (3 seeds x 4 kernels).
    sweep = seed_sweep(
        {"ssmdvfs": lambda: SSMDVFSController(model, PRESET),
         "pcstall": lambda: PCSTALLPolicy(PRESET)},
        kernels, arch, PRESET, seeds=[5, 6, 7])
    write_result("robustness_seeds", sweep.render())
    assert sweep.std_edp["ssmdvfs"] < 0.05  # aggregates are stable
    assert sweep.mean_edp["ssmdvfs"] < 1.0

    # Benchmark: one noisy-counter perturbation of a full record.
    controller = NoisyCountersPolicy(
        SSMDVFSController(model, PRESET), 0.1, seed=3)
    simulator = GPUSimulator(arch, kernels[0], seed=3)
    controller.reset(simulator)
    record = simulator.step_epoch()
    benchmark(lambda: controller._perturb(record.counters))


def test_chaos_soak_gate(pipeline, arch, tmp_path, benchmark):
    """Full-scale chaos soak: detect, heal, and stay within the preset.

    The paper-scale pruned pair is registered as last-known-good, then
    driven through sensor faults, a mid-run stale-model injection and
    crash-write torture.  Fault rates are scaled to the 24-cluster
    architecture (the per-cluster/per-counter knobs compound with
    cluster count) so the epoch-level anomaly pressure matches the
    small-arch soak.  Any invariant violation fails the gate; the JSON
    payload lands in results/ for the report.
    """
    from repro.evaluation.soak import SOAK_ARTIFACT, SoakConfig, run_soak
    from repro.faults import FaultConfig
    from repro.store import ArtifactStore
    from repro.workloads.suites import (scale_kernel_to_duration,
                                        training_suite)
    from _reporting import RESULTS_DIR, write_result

    model = pipeline.model("pruned")
    kernels = [scale_kernel_to_duration(kernel, arch, 1000e-6)
               for kernel in training_suite()[:2]]
    config = SoakConfig(
        seed=17,
        faults=FaultConfig(counter_dropout=1e-3, counter_nan=5e-5,
                           counter_spike=5e-5),
        crash_write_trials=16,
    )
    result = run_soak(model, kernels, arch, tmp_path / "store", config)
    write_result("robustness_soak", result.render())
    result.export_json(RESULTS_DIR / "BENCH_robustness_soak.json")
    assert result.passed, result.violations
    for record in result.records:
        assert record.healed_by == "hot_swap"

    # Benchmark: one verified read of the pair from the registry.
    store = ArtifactStore(tmp_path / "store")
    benchmark(lambda: store.get(SOAK_ARTIFACT))


def test_fleet_resilience_gate(pipeline, arch, tmp_path, benchmark):
    """Fleet leg: recovery and shed-rate gates under a fixed fault train.

    Guarded per-node SSMDVFS controllers serve a bursty trace while a
    seeded crash/hang/thermal/storm train hits the nodes.  The chaos
    harness asserts conservation, byte-stable replay and shed
    discipline; on top of that this gate pins fleet-level outcomes:
    every quarantined node is re-admitted within its outage budget and
    admission control sheds at most a third of the stream.  The guard
    and drift counters from the per-node controllers must surface in
    the exported campaign aggregate.
    """
    from repro.evaluation.fleet_chaos import (FleetChaosConfig,
                                              run_fleet_chaos)
    from repro.faults import NodeFaultConfig
    from repro.fleet import policy_factory as fleet_policy
    from _reporting import RESULTS_DIR, write_result

    model = pipeline.model("pruned")
    factory = fleet_policy("ssmdvfs-guarded", preset=PRESET, model=model)
    config = FleetChaosConfig(
        trace="burst", jobs=16, nodes=4, load=1.0, trials=2,
        determinism_trials=1, seed=29,
        faults=NodeFaultConfig(crash_rate=0.6, hang_rate=0.4,
                               thermal_rate=0.4, storm_rate=0.4, seed=29),
        crash_write_trials=8)
    result = run_fleet_chaos(arch, factory, config,
                             policy_name="ssmdvfs-guarded",
                             store_root=tmp_path / "store")
    write_result("fleet_resilience", result.render())
    result.export_json(RESULTS_DIR / "BENCH_fleet_resilience.json")
    assert result.passed, result.violations

    # Recovery gate: timed outages resolve; no node ends wedged.
    for trial in result.trials:
        assert trial.still_quarantined == 0
        assert trial.recoveries >= trial.quarantines
    # Shed gate: load shedding stays a safety valve, not the service.
    assert max(t.shed_rate for t in result.trials) <= 1 / 3
    # Jobs are conserved in every trial and the first replay is
    # byte-stable across worker counts.
    assert all(t.conserved for t in result.trials)
    assert result.trials[0].byte_stable is True
    # Per-node guarded controllers surface their policy counters into
    # the campaign aggregate (guard_*/drift_* appear once they trip;
    # the calibration channel reports even when clean).
    from repro.fleet.tracker import POLICY_COUNTER_PREFIXES
    assert any(name.startswith(POLICY_COUNTER_PREFIXES)
               for name in result.counters)

    # Benchmark: seeded fault-train construction (the chaos hot path
    # outside the replay itself).
    from repro.faults import NodeFaultPlan
    benchmark(lambda: NodeFaultPlan.build(config.faults, config.nodes,
                                          1e-3))


def test_serve_resilience_gate(pipeline, arch, tmp_path, benchmark):
    """Serving leg: recovery-time and shed-discipline gates under chaos.

    The paper-scale pruned pair serves decisions through the always-on
    runtime while a seeded crash/hang/stall/storm/gap/poison/burst
    train hits the workers and telemetry streams.  The serve-chaos
    harness asserts the five serving invariants (valid decisions,
    request conservation, bounded recovery, byte-stable replay,
    deadline-shed discipline); on top of that this gate pins the
    service-level outcomes: every worker outage heals within the
    recovery budget, shedding stays a pressure valve (at most a third
    of the stream, zero deadline-class sheds), and the degraded /
    fallback decision paths plus the circuit-breaker and online-
    calibration channels surface in the exported counter aggregate.
    """
    from repro.evaluation.serve_chaos import (CHAOS_FAULTS,
                                              ServeChaosConfig,
                                              run_serve_chaos)
    from repro.serve import ServeConfig
    from _reporting import RESULTS_DIR, write_result

    model = pipeline.model("pruned")
    config = ServeChaosConfig(
        trials=2, determinism_trials=1, seed=29,
        serve=ServeConfig(streams=2, ticks=160, num_workers=2,
                          preset=PRESET, faults=CHAOS_FAULTS),
        crash_write_trials=8)
    result = run_serve_chaos(arch, config, model=model,
                             store_root=tmp_path / "store")
    write_result("serve_resilience", result.render())
    result.export_json(RESULTS_DIR / "BENCH_serve_resilience.json")
    assert result.passed, result.violations

    for trial in result.trials:
        # Recovery gate: every outage resolves inside the budget and
        # no worker ends the run quarantined or mid-restart.
        assert trial.max_recovery_ticks <= config.recovery_budget_ticks
        assert trial.unrecovered == 0
        # Shed gate: deadline-class traffic is never shed while the
        # queue has room, and total shedding stays a safety valve.
        assert trial.bad_deadline_sheds == 0
        assert trial.invalid_decisions == 0
        assert trial.conserved
        assert trial.shed <= trial.submitted / 3
    assert result.trials[0].byte_stable is True

    # The degraded/fallback serving paths and the breaker + online-
    # calibration channels must surface in the campaign aggregate.
    assert result.counters.get("serve_requests_submitted", 0) > 0
    assert any(name.startswith("breaker_") for name in result.counters)
    assert any(name.startswith("online_") for name in result.counters)

    # Benchmark: seeded serve-fault-train construction (the chaos hot
    # path outside the replay itself).
    from repro.faults import ServeFaultPlan
    serve = config.serve
    benchmark(lambda: ServeFaultPlan.build(
        serve.faults, serve.num_workers, serve.streams,
        serve.ticks + serve.drain_ticks))
