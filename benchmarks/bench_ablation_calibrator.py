"""Ablation — what the Calibrator buys (paper §V-C).

The paper's claim: "For cases where certain programs exceeded the
preset thresholds, adding Calibrator reduced latency, bringing it back
under control."  On well-predicted stationary programs the calibrated
and uncalibrated controllers coincide; the difference appears on
*adversarial* programs whose behaviour swings faster than one epoch and
wanders outside the training distribution.

This bench builds such programs (sub-epoch phases, heavy jitter) and
compares the controller with and without the Calibrator.
"""

import numpy as np

from repro.gpu.kernels import KernelProfile
from repro.gpu.phases import compute_phase, divergent_phase, memory_phase
from repro.gpu.simulator import GPUSimulator
from repro.core.controller import SSMDVFSController
from repro.core.policy import StaticPolicy
from repro.evaluation.reporting import format_table

PRESET = 0.10


def _adversarial_kernels():
    """Fast-swinging, noisy programs (unseen during training)."""
    kernels = []
    for index, phases in enumerate([
        [compute_phase("c", 30_000, warps=16), memory_phase("m", 25_000)],
        [divergent_phase("d", 20_000, warps=20),
         compute_phase("c", 28_000, warps=14)],
        [memory_phase("m", 22_000, l1_miss=0.5),
         compute_phase("c", 30_000, warps=12),
         divergent_phase("d", 15_000)],
    ]):
        kernels.append(KernelProfile(
            f"adv.swing{index}", phases, iterations=14, jitter=0.18))
    return kernels


def _run(policy, arch, kernel, seed):
    simulator = GPUSimulator(arch, kernel, seed=seed)
    return simulator.run(policy, keep_records=False)


def test_calibrator_ablation(pipeline, arch, benchmark):
    model = pipeline.model("base")
    rows = []
    lat_cal, lat_nocal, edp_cal, edp_nocal = [], [], [], []
    for kernel in _adversarial_kernels():
        base = _run(StaticPolicy(arch.vf_table.default_level), arch,
                    kernel, seed=11)
        cal = _run(SSMDVFSController(model, PRESET), arch, kernel, seed=11)
        nocal = _run(SSMDVFSController(model, PRESET, use_calibrator=False),
                     arch, kernel, seed=11)
        lat_cal.append(cal.time_s / base.time_s)
        lat_nocal.append(nocal.time_s / base.time_s)
        edp_cal.append(cal.edp / base.edp)
        edp_nocal.append(nocal.edp / base.edp)
        rows.append([kernel.name, round(lat_nocal[-1], 3),
                     round(lat_cal[-1], 3), round(edp_nocal[-1], 3),
                     round(edp_cal[-1], 3)])
    from _reporting import write_result
    write_result("ablation_calibrator", format_table(
        ["Kernel", "lat nocal", "lat cal", "EDP nocal", "EDP cal"], rows,
        title=f"Calibrator ablation, preset {PRESET:.0%}"))

    # The calibrated controller must not run later than the
    # uncalibrated one on adversarial programs (its entire purpose),
    # and must not wreck EDP doing so.
    assert float(np.mean(lat_cal)) <= float(np.mean(lat_nocal)) + 0.005
    assert float(np.mean(edp_cal)) <= float(np.mean(edp_nocal)) + 0.04
    # And where the uncalibrated controller breaches the preset, the
    # calibrated one must pull latency back toward it.
    for violation_nocal, violation_cal in zip(lat_nocal, lat_cal):
        if violation_nocal > 1.0 + PRESET + 0.02:
            assert violation_cal < violation_nocal

    # Benchmark: one calibration update (the per-epoch runtime cost the
    # mechanism adds on top of the Decision-maker inference).
    controller = SSMDVFSController(model, PRESET)
    simulator = GPUSimulator(arch, _adversarial_kernels()[0], seed=1)
    controller.reset(simulator)
    record = simulator.step_epoch()
    controller.decide(record)
    pending = list(controller._pending)

    def calibrate_once():
        controller._pending = list(pending)
        controller._calibrate(record)

    benchmark(calibrate_once)
