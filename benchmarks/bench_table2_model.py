"""Table II — final model information before vs after compression.

Regenerates the paper's Table II: structures, FLOPs, accuracy and MAPE
of the base 5+4x20 pair against the layer-wise-compressed + pruned
pair (paper: 6960 -> 366 FLOPs, 69.82 -> 67.42 % accuracy,
3.43 -> 4.61 % MAPE).
"""

import numpy as np

from repro.evaluation.experiments import run_table2


def test_table2_model_information(pipeline, benchmark):
    result = run_table2(pipeline)
    from _reporting import write_result
    write_result("table2_model", result.render())

    # Shape assertions mirroring the paper's Table II.
    assert 5500 < result.flops_before < 9000        # paper: 6960
    assert result.flops_after < result.flops_before / 4
    assert result.compression_pct > 75.0            # paper: 94.74 %
    # Quality must degrade only mildly under compression.
    assert (result.pruned.accuracy_pct
            > result.base.accuracy_pct - 12.0)      # paper: -2.4 pp
    assert result.pruned.mape_pct < result.base.mape_pct + 8.0

    # Benchmark: one decision epoch's worth of inference on the
    # compressed pair (what the ASIC module executes every 10 us).
    decision = result.pruned.decision
    calibrator = result.pruned.calibrator
    x_d = np.zeros((1, decision.input_size))
    x_c = np.zeros((1, calibrator.input_size))

    def per_epoch_inference():
        decision.forward(x_d)
        calibrator.forward(x_c)

    benchmark(per_epoch_inference)
