"""Shared fixtures for the experiment benchmarks.

Each benchmark regenerates one of the paper's tables or figures at the
full GTX-Titan-X scale.  The expensive artefacts — the training dataset
(cached on disk under ``.cache/``) and the trained model pipeline — are
built once per session and shared.

Run with::

    pytest benchmarks/ --benchmark-only

The first run generates the dataset (~2-4 minutes); later runs load it
from the cache.
"""

from pathlib import Path

import pytest

from repro.gpu.arch import titan_x_config
from repro.datagen.cache import cached_dataset
from repro.datagen.protocol import ProtocolConfig
from repro.nn.trainer import TrainConfig
from repro.core.pipeline import PipelineConfig, build_from_dataset
from repro.workloads.suites import (evaluation_suite,
                                    scale_kernel_to_duration, training_suite)

#: The paper's Table I feature set (counter names for IPC, PPC, MH,
#: MH\L, L1CRM).
PAPER_FEATURES = ("power_per_core", "ipc", "stall_mem_hazard",
                  "stall_mem_hazard_nonload", "l1_read_miss")

CACHE_DIR = Path(__file__).resolve().parent.parent / ".cache"


RESULTS_DIR = Path(__file__).resolve().parent / "results"


def write_result(name: str, text: str) -> None:
    """Print a rendered artefact and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print("\n" + text)


@pytest.fixture(scope="session")
def arch():
    """GTX Titan X configuration (24 clusters, 6 V/f points)."""
    return titan_x_config()


@pytest.fixture(scope="session")
def dataset(arch):
    """Full-scale training dataset (18 kernels x 10 breakpoints)."""
    protocol = ProtocolConfig(max_breakpoints_per_kernel=10, seed=3)
    return cached_dataset(CACHE_DIR, training_suite(), arch, protocol)


@pytest.fixture(scope="session")
def pipeline(dataset, arch):
    """Paper-scale pipeline build: base + compressed + pruned pairs."""
    config = PipelineConfig(
        feature_names=PAPER_FEATURES,
        train=TrainConfig(epochs=250, patience=30, learning_rate=2e-3,
                          seed=3),
        finetune=TrainConfig(epochs=80, patience=15, learning_rate=5e-4,
                             seed=3),
        seed=3,
    )
    return build_from_dataset(dataset, arch, config)


@pytest.fixture(scope="session")
def eval_kernels(arch):
    """The ~300 us evaluation programs of §V.A (>50 % unseen)."""
    return [scale_kernel_to_duration(kernel, arch, 300e-6)
            for kernel in evaluation_suite()]
