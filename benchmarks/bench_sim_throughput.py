"""Simulator throughput — substrate speed, not a paper artefact.

Times one 10 us DVFS epoch of the 24-cluster GTX Titan X simulator
(interval model, all counters, power).  This bounds every other
experiment's runtime: a Fig. 4 campaign simulates tens of thousands of
these epochs.
"""

from repro.gpu.simulator import GPUSimulator
from repro.workloads.suites import kernel_by_name


def test_epoch_step_throughput(arch, benchmark):
    kernel = kernel_by_name("rodinia.hotspot").with_iterations(10_000)
    simulator = GPUSimulator(arch, kernel, seed=1)

    record = benchmark(simulator.step_epoch)
    assert record.instructions > 0
    assert len(record.cluster_counters) == arch.num_clusters
