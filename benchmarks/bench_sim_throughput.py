"""Simulator throughput — substrate speed, not a paper artefact.

Times one 10 us DVFS epoch of the 24-cluster GTX Titan X simulator
(interval model, all counters, power).  This bounds every other
experiment's runtime: a Fig. 4 campaign simulates tens of thousands of
these epochs.

Also times the campaign layer itself: a small data-generation campaign
run serially and through the process-pool fan-out, so parallel
speedups (and regression of the fan-out overhead) are measurable.
"""

import numpy as np

from repro.datagen.dataset import DVFSDataset
from repro.datagen.protocol import ProtocolConfig, generate_chunks_for_suite
from repro.gpu.arch import small_test_config
from repro.gpu.kernels import KernelProfile
from repro.gpu.phases import balanced_phase, compute_phase, memory_phase
from repro.gpu.simulator import GPUSimulator
from repro.parallel import CampaignStats
from repro.workloads.suites import kernel_by_name

CAMPAIGN_CFG = ProtocolConfig(max_breakpoints_per_kernel=2, seed=7)


def _campaign_suite():
    return [
        KernelProfile("bench.compute",
                      [compute_phase("c", 120_000, warps=16)],
                      iterations=6, jitter=0.05),
        KernelProfile("bench.memory",
                      [memory_phase("m", 120_000, warps=40, l1_miss=0.8,
                                    l2_miss=0.7)],
                      iterations=6, jitter=0.05),
        KernelProfile("bench.balanced", [balanced_phase("b", 120_000)],
                      iterations=6, jitter=0.05),
        KernelProfile("bench.mixed",
                      [compute_phase("c", 80_000, warps=20),
                       memory_phase("m", 80_000, warps=40)],
                      iterations=5, jitter=0.06),
    ]


def _run_campaign(workers):
    arch = small_test_config(num_clusters=2)
    stats = CampaignStats()
    chunks = generate_chunks_for_suite(_campaign_suite(), arch,
                                       config=CAMPAIGN_CFG, workers=workers,
                                       stats=stats)
    return DVFSDataset.from_breakpoint_chunks(chunks, workers=workers,
                                              stats=stats)


def test_epoch_step_throughput(arch, benchmark):
    kernel = kernel_by_name("rodinia.hotspot").with_iterations(10_000)
    simulator = GPUSimulator(arch, kernel, seed=1)

    record = benchmark(simulator.step_epoch)
    assert record.instructions > 0
    assert len(record.cluster_counters) == arch.num_clusters


def test_campaign_serial_throughput(benchmark):
    dataset = benchmark.pedantic(_run_campaign, args=(1,), rounds=2,
                                 iterations=1)
    assert dataset.num_samples > 0


def test_campaign_parallel_throughput(benchmark):
    dataset = benchmark.pedantic(_run_campaign, args=(2,), rounds=2,
                                 iterations=1)
    serial = _run_campaign(1)
    assert np.array_equal(dataset.counters, serial.counters)
