"""Simulator throughput — substrate speed, not a paper artefact.

Times one 10 us DVFS epoch of the 24-cluster GTX Titan X simulator
(interval model, all counters, power).  This bounds every other
experiment's runtime: a Fig. 4 campaign simulates tens of thousands of
these epochs.

Also times the campaign layer itself: a small data-generation campaign
run serially and through the process-pool fan-out, so parallel
speedups (and regression of the fan-out overhead) are measurable.

The epoch-engine tests double as the perf-regression gate: they time
the datagen-style snapshot/replay loop with the interval-model
solution cache on and off, and batched vs per-cluster scalar
inference, with plain ``time.perf_counter`` (so they run under
``--benchmark-disable`` in the CI smoke job) and persist the numbers
to ``benchmarks/results/BENCH_epoch_engine.json``.
"""

import functools
import json
import pickle
import time
from pathlib import Path

import numpy as np

from repro import store
from repro.cli import PAPER_FEATURES
from repro.core.calibrator import Calibrator
from repro.core.combined import SSMDVFSModel
from repro.core.controller import SSMDVFSController
from repro.core.decision_maker import DecisionMaker
from repro.datagen.dataset import DVFSDataset
from repro.datagen.features import FeatureExtractor, FeatureScaler
from repro.datagen.protocol import (ProtocolConfig, generate_chunks_for_suite,
                                    generate_for_kernel,
                                    scale_kernel_for_protocol)
from repro.evaluation.runner import compare_policies
from repro.gpu.arch import small_test_config, titan_x_config
from repro.gpu.counters import COUNTER_NAMES, CounterSet
from repro.gpu.kernels import KernelProfile
from repro.gpu.phases import balanced_phase, compute_phase, memory_phase
from repro.gpu.simulator import GPUSimulator
from repro.nn.mlp import MLP
from repro.parallel import CampaignStats
from repro.workloads.suites import (evaluation_suite, kernel_by_name,
                                    scale_kernel_to_duration)

CAMPAIGN_CFG = ProtocolConfig(max_breakpoints_per_kernel=2, seed=7)

RESULTS_PATH = Path(__file__).resolve().parent / "results" / \
    "BENCH_epoch_engine.json"


def _update_results(section: str, payload: dict) -> None:
    """Merge one section into the persisted epoch-engine result file."""
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    results = {}
    if RESULTS_PATH.exists():
        try:
            results = json.loads(RESULTS_PATH.read_text())
        except (OSError, json.JSONDecodeError):
            results = {}
    results[section] = payload
    RESULTS_PATH.write_text(json.dumps(results, indent=2, sort_keys=True)
                            + "\n")


def _campaign_suite():
    return [
        KernelProfile("bench.compute",
                      [compute_phase("c", 120_000, warps=16)],
                      iterations=6, jitter=0.05),
        KernelProfile("bench.memory",
                      [memory_phase("m", 120_000, warps=40, l1_miss=0.8,
                                    l2_miss=0.7)],
                      iterations=6, jitter=0.05),
        KernelProfile("bench.balanced", [balanced_phase("b", 120_000)],
                      iterations=6, jitter=0.05),
        KernelProfile("bench.mixed",
                      [compute_phase("c", 80_000, warps=20),
                       memory_phase("m", 80_000, warps=40)],
                      iterations=5, jitter=0.06),
    ]


def _run_campaign(workers):
    arch = small_test_config(num_clusters=2)
    stats = CampaignStats()
    chunks = generate_chunks_for_suite(_campaign_suite(), arch,
                                       config=CAMPAIGN_CFG, workers=workers,
                                       stats=stats)
    return DVFSDataset.from_breakpoint_chunks(chunks, workers=workers,
                                              stats=stats)


def test_epoch_step_throughput(arch, benchmark):
    kernel = kernel_by_name("rodinia.hotspot").with_iterations(10_000)
    simulator = GPUSimulator(arch, kernel, seed=1)

    record = benchmark(simulator.step_epoch)
    assert record.instructions > 0
    assert len(record.cluster_counters) == arch.num_clusters


def test_campaign_serial_throughput(benchmark):
    dataset = benchmark.pedantic(_run_campaign, args=(1,), rounds=2,
                                 iterations=1)
    assert dataset.num_samples > 0


def test_campaign_parallel_throughput(benchmark):
    dataset = benchmark.pedantic(_run_campaign, args=(2,), rounds=2,
                                 iterations=1)
    serial = _run_campaign(1)
    assert np.array_equal(dataset.counters, serial.counters)


# ---------------------------------------------------------------------------
# Epoch-engine perf gate: solution cache + batched inference
# ---------------------------------------------------------------------------

_REPLAYS = 8
_EPOCHS_PER_REPLAY = 6


def _replay_trial(use_cache):
    """One datagen-style snapshot/replay pass; returns (seconds, sim)."""
    arch = titan_x_config()
    kernel = kernel_by_name("rodinia.hotspot").with_iterations(10_000)
    simulator = GPUSimulator(arch, kernel, seed=1,
                             use_solution_cache=use_cache)
    simulator.set_all_levels(arch.vf_table.default_level)
    for _ in range(4):  # move past the cold start
        simulator.step_epoch()
    snapshot = simulator.snapshot()
    start = time.perf_counter()
    for _ in range(_REPLAYS):
        simulator.restore(snapshot)
        for _ in range(_EPOCHS_PER_REPLAY):
            simulator.step_epoch()
    return time.perf_counter() - start, simulator


def test_epoch_engine_cache_speedup():
    """The solve cache must keep the replay loop >= 2x faster.

    Best-of-3 wall-clock per mode to shrug off scheduler noise; the
    workload is the protocol's own access pattern (restore + re-step),
    which is exactly where the cache earns its keep.
    """
    epochs = _REPLAYS * _EPOCHS_PER_REPLAY
    cached_s = min(_replay_trial(True)[0] for _ in range(3))
    uncached_s = min(_replay_trial(False)[0] for _ in range(3))
    _, simulator = _replay_trial(True)
    cache = simulator.solution_cache
    speedup = uncached_s / cached_s
    _update_results("replay_cache", {
        "workload": "rodinia.hotspot x 24 clusters (titan_x)",
        "replays": _REPLAYS,
        "epochs_per_replay": _EPOCHS_PER_REPLAY,
        "cached_epochs_per_s": epochs / cached_s,
        "uncached_epochs_per_s": epochs / uncached_s,
        "speedup": speedup,
        "cache_hits": cache.hits,
        "cache_misses": cache.misses,
        "cache_hit_rate": cache.hit_rate,
        "cache_entries": len(cache),
    })
    # Deterministic part of the gate: the replay pattern must actually
    # hit (every replay after the first re-solves identical inputs).
    assert cache.hit_rate > 0.5
    assert cache.hits > cache.misses
    # Timing part: gross regressions fail; headroom is ~3x on an idle
    # machine.
    assert speedup >= 2.0, f"solve cache speedup collapsed: {speedup:.2f}x"


def _synthetic_runtime_models(num_levels=6, hidden=24, seed=11):
    """A DecisionMaker/Calibrator pair with random (but fitted) weights."""
    rng = np.random.default_rng(seed)
    extractor = FeatureExtractor(PAPER_FEATURES, issue_width=4.0)
    width = extractor.width + 1
    scaler = FeatureScaler().fit(rng.uniform(0.0, 50.0, size=(256, width)))
    decision = DecisionMaker(MLP([width, hidden, num_levels], rng=rng),
                             extractor, scaler, num_levels)
    calibrator = Calibrator(MLP([width, hidden, 1], rng=rng), extractor,
                            scaler)
    counter_sets = [
        CounterSet.from_vector(rng.uniform(1.0, 1e4, size=len(COUNTER_NAMES)))
        for _ in range(24)
    ]
    return decision, calibrator, counter_sets


def test_batched_inference_speedup():
    """One (clusters, features) pass must beat per-cluster scalar passes."""
    decision, calibrator, counter_sets = _synthetic_runtime_models()
    preset = 0.1
    repeats = 30

    def scalar_pass():
        levels = [decision.predict_level(c, preset) for c in counter_sets]
        return levels, [calibrator.predict_instructions(c, level)
                        for c, level in zip(counter_sets, levels)]

    def batched_pass():
        levels = decision.predict_levels(counter_sets, preset)
        return levels, calibrator.predict_instructions_batch(counter_sets,
                                                             levels)

    # Same decisions either way; the regression head agrees to BLAS
    # rounding (batched and single-row matmuls differ by ~1 ULP).
    scalar_levels, scalar_insts = scalar_pass()
    batched_levels, batched_insts = batched_pass()
    assert scalar_levels == batched_levels
    np.testing.assert_allclose(scalar_insts, batched_insts, rtol=1e-12)

    def best_of(fn, trials=3):
        best = float("inf")
        for _ in range(trials):
            start = time.perf_counter()
            for _ in range(repeats):
                fn()
            best = min(best, time.perf_counter() - start)
        return best / repeats

    scalar_s = best_of(scalar_pass)
    batched_s = best_of(batched_pass)
    speedup = scalar_s / batched_s
    _update_results("batched_inference", {
        "clusters": len(counter_sets),
        "scalar_us_per_decide": scalar_s * 1e6,
        "batched_us_per_decide": batched_s * 1e6,
        "speedup": speedup,
    })
    assert speedup >= 1.5, f"batched inference regressed: {speedup:.2f}x"


# ---------------------------------------------------------------------------
# Fused campaign engine: fused vs parallel vs serial wall-clock
# ---------------------------------------------------------------------------

FUSED_RESULTS_PATH = Path(__file__).resolve().parent / "results" / \
    "BENCH_fused_sim.json"

#: Presets swept per kernel — the Fig. 4 grid shape.  Each preset is a
#: full campaign task, so the fused engine co-simulates
#: ``len(_FUSED_PRESETS) + 1`` (baseline) tasks per kernel and shares
#: their noise tracks and interval-model solves.
_FUSED_PRESETS = (0.04, 0.05, 0.06, 0.08, 0.10, 0.12, 0.15, 0.18,
                  0.20, 0.25, 0.30)
_FUSED_SEED = 3
_FUSED_KERNEL_US = 400.0


def _fused_synth_model(num_levels, hidden=48, seed=11):
    """A runnable SSMDVFS model with random (but fitted) weights.

    The fused/parallel/serial comparison only needs the *shape* of real
    inference traffic — per-epoch Decision-maker + Calibrator forward
    passes over live counters — not a trained policy.
    """
    rng = np.random.default_rng(seed)
    extractor = FeatureExtractor(PAPER_FEATURES, issue_width=4.0)
    width = extractor.width + 1
    scaler = FeatureScaler().fit(rng.uniform(0.0, 50.0, size=(256, width)))
    return SSMDVFSModel(
        decision_model=MLP([width, hidden, num_levels], rng=rng),
        calibrator_model=MLP([width, hidden, 1], rng=rng),
        feature_names=PAPER_FEATURES, issue_width=4.0,
        num_levels=num_levels,
        decision_scaler=scaler, calibrator_scaler=scaler,
    )


def _fused_controller(model, preset):
    return SSMDVFSController(model, preset)


def _fused_eval_setup():
    """The benchmark campaign: preset sweep x evaluation kernels."""
    arch = small_test_config(num_clusters=4)
    model = _fused_synth_model(len(arch.vf_table))
    factories = {
        f"ssmdvfs-{preset:.2f}": functools.partial(_fused_controller,
                                                   model, preset)
        for preset in _FUSED_PRESETS
    }
    kernels = [scale_kernel_to_duration(k, arch, _FUSED_KERNEL_US * 1e-6)
               for k in evaluation_suite()[:4]]
    return arch, factories, kernels


def _fused_eval_run(fused, workers, fuse_width=64):
    """One full campaign; returns (comparable payload, stats)."""
    arch, factories, kernels = _fused_eval_setup()
    stats = CampaignStats()
    result = compare_policies(factories, kernels, arch, preset=0.10,
                              seed=_FUSED_SEED, workers=workers, stats=stats,
                              fused=fused, fuse_width=fuse_width)
    payload = [(r.policy_name, r.kernel_name, r.time_s, r.energy_j,
                r.normalized_edp, r.normalized_latency, r.epochs)
               for r in result.runs]
    return payload, stats


def test_fused_campaign_speedup():
    """The fused engine must beat the pool fan-out >= 3x, bit-identically.

    One campaign = (len(_FUSED_PRESETS) + 1 baseline) policies x 4
    evaluation kernels = 48 tasks.  The serial and parallel legs run
    each task's quantum loop independently; the fused leg co-simulates
    all tasks of a group in lockstep, sharing the solution cache, the
    position-indexed noise tracks and one batched inference pass per
    quantum.  Identity is asserted before timing: the speedup gate is
    only meaningful if the fused path produces byte-identical results.
    Best-of-3 wall-clock per leg (plain ``perf_counter`` so the gate
    runs under ``--benchmark-disable`` in CI).
    """
    serial_payload, _ = _fused_eval_run(False, 1)
    parallel_payload, _ = _fused_eval_run(False, 2)
    fused_payload, fused_stats = _fused_eval_run(True, 1)
    assert fused_payload == serial_payload, \
        "fused campaign diverged from the serial path"
    assert parallel_payload == serial_payload, \
        "parallel campaign diverged from the serial path"

    def best_of(fn, trials=3):
        best = float("inf")
        for _ in range(trials):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    serial_s = best_of(lambda: _fused_eval_run(False, 1))
    parallel_s = best_of(lambda: _fused_eval_run(False, 2))
    fused_s = best_of(lambda: _fused_eval_run(True, 1))
    vs_parallel = parallel_s / fused_s
    vs_serial = serial_s / fused_s
    counters = {name: value
                for name, value in sorted(fused_stats.counters.items())
                if name.startswith("fused_")}
    tasks = (len(_FUSED_PRESETS) + 1) * 4
    FUSED_RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    store.atomic_write_text(FUSED_RESULTS_PATH, json.dumps({
        "workload": (f"{len(_FUSED_PRESETS)} presets + baseline x 4 "
                     f"evaluation kernels @ {_FUSED_KERNEL_US:.0f}us, "
                     "4 clusters"),
        "tasks": tasks,
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "fused_s": fused_s,
        "fused_vs_parallel": vs_parallel,
        "fused_vs_serial": vs_serial,
        "bit_identical": True,
        "counters": counters,
    }, indent=2, sort_keys=True) + "\n")
    # Deterministic part of the gate: the fused run must actually have
    # fused (grouped inference, shared noise), not silently fallen back
    # to per-task decisions.
    assert counters.get("fused_tasks", 0) == tasks
    assert counters.get("fused_inference_groups", 0) > 0
    assert counters.get("fused_noise_shared", 0) > 0
    # ... and must have advanced its quanta through the vectorised
    # engine (one stacked solve per quantum), not the scalar loop.
    assert counters.get("fused_vectorized_quanta", 0) > 0
    # Timing part: the fused engine's dedup (shared solves + noise) and
    # batched inference carry the gate; measured headroom is ~3.4-3.6x.
    assert vs_parallel >= 3.0, \
        f"fused campaign speedup collapsed: {vs_parallel:.2f}x vs parallel"
    assert vs_serial >= 2.0, \
        f"fused campaign speedup collapsed: {vs_serial:.2f}x vs serial"


# ---------------------------------------------------------------------------
# Vectorised quantum kernel: batched epoch loop + fused V/f-grid replay
# ---------------------------------------------------------------------------

QUANTUM_RESULTS_PATH = Path(__file__).resolve().parent / "results" / \
    "BENCH_quantum_kernel.json"

#: Control epoch for the per-quantum-loop leg.  The gate measures the
#: regime the kernel was built for — datagen replay segments are ~100 us
#: of simulated time per solve wave — so it uses a long epoch where the
#: per-quantum Python overhead dominates the serial loop; at the default
#: 10 us epoch the measured speedup is ~2.3x, rising to >3x from ~30 us.
_QK_EPOCH_S = 50e-6
_QK_EPOCHS = 60
_QK_SEED = 11


def _quantum_mix(arch):
    """A four-kernel tenant mix: phase diversity keeps the solution
    cache in its honest cold/mixed regime instead of pure replay."""
    return [scale_kernel_to_duration(k, arch, 5e-3)
            for k in evaluation_suite()[:4]]


def _quantum_loop_records(vectorized):
    arch = titan_x_config()
    sim = GPUSimulator(arch, _quantum_mix(arch), seed=_QK_SEED,
                       epoch_s=_QK_EPOCH_S, vectorized=vectorized)
    records = []
    for _ in range(_QK_EPOCHS):
        if sim.finished:
            break
        records.append(sim.step_epoch())
    return records, sim


def _quantum_loop_seconds(vectorized):
    arch = titan_x_config()
    sim = GPUSimulator(arch, _quantum_mix(arch), seed=_QK_SEED,
                       epoch_s=_QK_EPOCH_S, vectorized=vectorized)
    start = time.perf_counter()
    for _ in range(_QK_EPOCHS):
        if sim.finished:
            break
        sim.step_epoch()
    return time.perf_counter() - start


_GRID_CFG_FUSED = ProtocolConfig(seed=9, max_breakpoints_per_kernel=2,
                                 fused_grid=True, vectorized_quanta=True)
_GRID_CFG_SERIAL = ProtocolConfig(seed=9, max_breakpoints_per_kernel=2,
                                  fused_grid=False, vectorized_quanta=False)


def _grid_kernel(arch):
    kernel = kernel_by_name("rodinia.hotspot")
    return scale_kernel_for_protocol(kernel, arch, _GRID_CFG_FUSED)


def _grid_replay(config):
    arch = titan_x_config()
    return generate_for_kernel(_grid_kernel(arch), arch, config=config)


def test_quantum_kernel_speedup():
    """The batched quantum kernel must beat the scalar hot path.

    Two legs, identity asserted before timing (a speedup gate is only
    meaningful over byte-identical output):

    * per-quantum loop: 60 stepped 50 us epochs of the 24-cluster
      titan_x under a four-kernel tenant mix, vectorised engine vs the
      scalar per-cluster loop — gate >= 2.5x;
    * V/f-grid replay: one datagen kernel's breakpoint protocol with the
      fused lockstep grid vs the serial six-way replay — gate >= 2x.

    Timing runs interleave the two paths (best-of-3 per path) so
    machine noise hits both legs alike; plain ``perf_counter`` keeps the
    gate alive under ``--benchmark-disable``.
    """
    vec_records, vec_sim = _quantum_loop_records(True)
    ser_records, _ = _quantum_loop_records(False)
    assert pickle.dumps(vec_records) == pickle.dumps(ser_records), \
        "vectorised epoch loop diverged from the scalar loop"
    assert len(vec_records) == _QK_EPOCHS

    fused_chunk = _grid_replay(_GRID_CFG_FUSED)
    serial_chunk = _grid_replay(_GRID_CFG_SERIAL)
    assert pickle.dumps(fused_chunk) == pickle.dumps(serial_chunk), \
        "fused V/f-grid replay diverged from the serial replay"
    assert len(fused_chunk) == _GRID_CFG_FUSED.max_breakpoints_per_kernel

    loop_vec = loop_ser = grid_fused = grid_serial = float("inf")
    for _ in range(3):
        loop_vec = min(loop_vec, _quantum_loop_seconds(True))
        loop_ser = min(loop_ser, _quantum_loop_seconds(False))
        start = time.perf_counter()
        _grid_replay(_GRID_CFG_FUSED)
        grid_fused = min(grid_fused, time.perf_counter() - start)
        start = time.perf_counter()
        _grid_replay(_GRID_CFG_SERIAL)
        grid_serial = min(grid_serial, time.perf_counter() - start)

    loop_speedup = loop_ser / loop_vec
    grid_speedup = grid_serial / grid_fused
    cache = vec_sim.solution_cache
    QUANTUM_RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    store.atomic_write_text(QUANTUM_RESULTS_PATH, json.dumps({
        "loop": {
            "workload": ("4-kernel tenant mix x 24 clusters (titan_x), "
                         f"{_QK_EPOCHS} x {_QK_EPOCH_S * 1e6:.0f}us epochs"),
            "vectorized_s": loop_vec,
            "scalar_s": loop_ser,
            "speedup": loop_speedup,
            "vectorized_epochs_per_s": _QK_EPOCHS / loop_vec,
            "scalar_epochs_per_s": _QK_EPOCHS / loop_ser,
            "cache_batch_hits": cache.batch_hits,
            "cache_batch_misses": cache.batch_misses,
            "cache_evictions": cache.evictions,
        },
        "grid_replay": {
            "workload": ("rodinia.hotspot breakpoint protocol x 24 "
                         "clusters (titan_x), "
                         f"{len(fused_chunk)} breakpoints x 6 V/f points"),
            "fused_s": grid_fused,
            "serial_s": grid_serial,
            "speedup": grid_speedup,
        },
        "bit_identical": True,
    }, indent=2, sort_keys=True) + "\n")
    # Deterministic part: the vectorised run must actually have used the
    # batched cache protocol, not fallen back to scalar probes.
    assert cache is not None and cache.batch_misses > 0
    assert loop_speedup >= 2.5, \
        f"quantum-kernel loop speedup collapsed: {loop_speedup:.2f}x"
    assert grid_speedup >= 2.0, \
        f"fused grid-replay speedup collapsed: {grid_speedup:.2f}x"
