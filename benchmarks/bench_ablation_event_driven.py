"""Ablation — event-driven inference (extension).

§V-D budgets one MLP inference per 10 µs epoch per cluster.  The
event-driven controller gates inference behind a cheap phase-change
detector and holds the previous levels inside stationary phases.  This
bench measures what the gating costs (EDP/latency deltas) and saves
(fraction of inferences skipped) on the evaluation suite — where most
kernels are phase-stationary, the detector should skip the majority of
inferences at negligible quality cost.
"""

import numpy as np

from repro.gpu.simulator import GPUSimulator
from repro.core.controller import SSMDVFSController
from repro.core.event_driven import EventDrivenController
from repro.core.policy import StaticPolicy
from repro.evaluation.reporting import format_table

PRESET = 0.10


def test_event_driven_ablation(pipeline, eval_kernels, arch, benchmark):
    model = pipeline.model("pruned")
    kernels = eval_kernels[:6]
    rows = []
    full_edps, event_edps, savings, lat_deltas = [], [], [], []
    for kernel in kernels:
        base = GPUSimulator(arch, kernel, seed=19).run(
            StaticPolicy(arch.vf_table.default_level), keep_records=False)
        full = GPUSimulator(arch, kernel, seed=19).run(
            SSMDVFSController(model, PRESET), keep_records=False)
        event_controller = EventDrivenController(model, PRESET)
        event = GPUSimulator(arch, kernel, seed=19).run(
            event_controller, keep_records=False)
        full_edps.append(full.edp / base.edp)
        event_edps.append(event.edp / base.edp)
        savings.append(event_controller.inference_savings)
        lat_deltas.append((event.time_s - full.time_s) / base.time_s)
        rows.append([kernel.name, round(full_edps[-1], 3),
                     round(event_edps[-1], 3),
                     f"{savings[-1]:.0%}"])
    from _reporting import write_result
    write_result("ablation_event_driven", format_table(
        ["Kernel", "EDP every-epoch", "EDP event-driven",
         "inferences skipped"], rows,
        title=f"Event-driven inference gating, preset {PRESET:.0%}"))

    # Gating must skip a substantial share of inferences on the
    # (mostly stationary) evaluation kernels...
    assert float(np.mean(savings)) > 0.3
    # ...at near-zero quality cost.
    assert float(np.mean(event_edps)) < float(np.mean(full_edps)) + 0.02
    assert float(np.mean(lat_deltas)) < 0.02

    # Benchmark: one detector evaluation (the thing that replaces the
    # MLP inference on held epochs).
    controller = EventDrivenController(model, PRESET)
    simulator = GPUSimulator(arch, kernels[0], seed=19)
    controller.reset(simulator)
    record = simulator.step_epoch()
    controller.decide(record)
    features = controller._features(record.cluster_counters[0])
    detector = controller._detectors[0]
    benchmark(lambda: detector.changed(features))
