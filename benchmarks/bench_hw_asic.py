"""§V-D — hardware implementation cost of the SSMDVFS module.

Regenerates the paper's ASIC analysis for the deployed (pruned) model:
cycles per inference, latency, area scaled 65 nm -> 28 nm, power, and
the shares of the 10 us epoch and the 250 W TDP (paper: 192 cycles,
0.16 us, 0.0080 mm^2, 0.0025 W, 1.65 %).
"""

from repro.hardware.asic import ASICModel
from repro.evaluation.experiments import run_hardware
from repro.units import us


def test_hardware_asic_cost(pipeline, benchmark):
    model = pipeline.model("pruned")
    result = run_hardware(model, epoch_s=us(10), gpu_tdp_w=250.0)
    from _reporting import write_result
    write_result("hw_asic", result.render())

    report = result.report
    # Same order of magnitude as the paper on every §V-D quantity.
    assert 50 <= report.cycles_per_inference <= 800       # paper: 192
    assert report.latency_us < 1.0                        # paper: 0.16
    assert 0.001 <= report.area_mm2_scaled <= 0.05        # paper: 0.0080
    assert report.power_w_scaled < 0.05                   # paper: 0.0025
    assert report.epoch_fraction(us(10)) < 0.10           # paper: 1.65 %
    assert report.tdp_fraction(250.0) < 1e-3              # negligible

    # Scaling sanity: 28 nm must be much smaller than the 65 nm block.
    assert report.area_mm2_scaled < report.area_mm2_reference / 2

    # Benchmark: the full analytical cost evaluation.
    asic = ASICModel()
    models = [model.decision_model, model.calibrator_model]
    benchmark(lambda: asic.report(models, sparse=True, node_nm=28))
