"""Training-pipeline perf gates: batched scoring, fused replicas, caches.

The offline stage of the paper retrains small MLPs hundreds of times
(RFE rounds, the Fig. 3 architecture grid, pruning fine-tunes).  This
module is the perf-regression gate for the machinery that makes those
campaigns cheap:

* **RFE importance scoring** — the ``(columns x repeats)`` permuted test
  copies scored as one stacked forward must stay >= 3x faster than the
  serial per-column ``predict_class`` loop, while returning bit-equal
  importances on the identical random stream.
* **Sweep caching** — re-running the layer-wise and pruning sweeps over
  a warm content-addressed cache must stay >= 2x faster than training
  the grid, and return the identical frontier points.
* **Population training** — ``train_pair_replicas`` fuses seed replicas
  into one lockstep pass; replica accuracies must match their serial
  ``train_pair`` counterparts within 1e-6.

All timing is plain ``time.perf_counter`` (best-of-N), so these run
under ``--benchmark-disable`` in the CI smoke job, and the numbers are
persisted to ``benchmarks/results/BENCH_training_pipeline.json``.
"""

import gc
import json
import time
from pathlib import Path

import numpy as np

from repro.datagen.rfe import (ImportanceWorkspace, _permutation_importance,
                               permutation_importances)
from repro.nn.compress import (ArchitectureSpec, SplitData, layer_wise_sweep,
                               pruning_sweep, train_pair,
                               train_pair_replicas)
from repro.nn.mlp import MLP
from repro.nn.trainer import TrainConfig
from repro.parallel import CampaignStats

RESULTS_PATH = Path(__file__).resolve().parent / "results" / \
    "BENCH_training_pipeline.json"


def _update_results(section: str, payload: dict) -> None:
    """Merge one section into the persisted training-pipeline results."""
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    results = {}
    if RESULTS_PATH.exists():
        try:
            results = json.loads(RESULTS_PATH.read_text())
        except (OSError, json.JSONDecodeError):
            results = {}
    results[section] = payload
    RESULTS_PATH.write_text(json.dumps(results, indent=2, sort_keys=True)
                            + "\n")


def _best_of(fn, trials=9):
    best = float("inf")
    for _ in range(trials):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _best_of_interleaved(fns, trials=11):
    """Best-of timings with the contenders interleaved trial by trial.

    Machine-wide drift (frequency scaling, page placement) then hits
    every contender alike, so the *ratio* of bests stays honest even
    when absolute times wander.  GC is paused around the timed region
    for the same reason.
    """
    bests = [float("inf")] * len(fns)
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        for _ in range(trials):
            for index, fn in enumerate(fns):
                start = time.perf_counter()
                fn()
                bests[index] = min(bests[index],
                                   time.perf_counter() - start)
    finally:
        if gc_was_enabled:
            gc.enable()
    return bests


# ---------------------------------------------------------------------------
# RFE importance scoring: batched stack vs serial per-column loop
# ---------------------------------------------------------------------------

_RFE_ROWS = 48
_RFE_WIDTH = 13     # PPC + 12 surviving indirect candidates
_RFE_LEVELS = 6     # Titan X V/f table depth
_RFE_REPEATS = 3
_RFE_HIDDEN = (20,) * 5  # the paper's 5x20 Decision-maker


def _rfe_setup():
    rng = np.random.default_rng(0)
    x = rng.normal(size=(_RFE_ROWS, _RFE_WIDTH))
    y = rng.integers(0, _RFE_LEVELS, size=_RFE_ROWS)
    model = MLP([_RFE_WIDTH, *_RFE_HIDDEN, _RFE_LEVELS],
                rng=np.random.default_rng(1))
    columns = list(range(1, _RFE_WIDTH))
    return model, x, y, columns


def test_rfe_importance_batched_speedup():
    """The stacked scoring path must stay >= 3x over the serial loop.

    The serial reference is the original per-column loop (one
    ``predict_class`` per repeat plus the per-column baseline re-check);
    the batched path scores every ``column x repeat`` slice with one
    flattened GEMM per model layer.  Exactness is asserted first —
    identical random stream, bit-equal importances — so the speedup can
    never come from computing something cheaper.
    """
    model, x, y, columns = _rfe_setup()

    def serial():
        rng = np.random.default_rng(9)
        return np.array([
            _permutation_importance(model, x, y, column, rng,
                                    repeats=_RFE_REPEATS)
            for column in columns
        ])

    workspace = ImportanceWorkspace()

    def batched():
        rng = np.random.default_rng(9)
        return permutation_importances(model, x, y, columns, rng,
                                       repeats=_RFE_REPEATS,
                                       workspace=workspace)

    serial_scores, batched_scores = serial(), batched()
    np.testing.assert_array_equal(serial_scores, batched_scores)

    serial_s, batched_s = _best_of_interleaved([serial, batched])
    speedup = serial_s / batched_s
    _update_results("rfe_importance", {
        "rows": _RFE_ROWS,
        "columns": len(columns),
        "repeats": _RFE_REPEATS,
        "hidden": list(_RFE_HIDDEN),
        "serial_ms": serial_s * 1e3,
        "batched_ms": batched_s * 1e3,
        "speedup": speedup,
        "max_abs_diff": float(np.abs(serial_scores - batched_scores).max()),
    })
    assert speedup >= 3.0, f"batched RFE scoring regressed: {speedup:.2f}x"


# ---------------------------------------------------------------------------
# Sweep cache: cold training vs warm content-addressed reload
# ---------------------------------------------------------------------------

_SWEEP_SPECS = [ArchitectureSpec((10,) * 2, (8,)),
                ArchitectureSpec((8,) * 2, (6,)),
                ArchitectureSpec((6,), (4,))]
_SWEEP_CFG = TrainConfig(epochs=10, patience=4, seed=1)
_SWEEP_GRID = [(0.4, 0.7), (0.6, 0.9)]
_FINETUNE_CFG = TrainConfig(epochs=6, patience=3, learning_rate=5e-4, seed=1)


def _sweep_splits():
    rng = np.random.default_rng(2)
    xd = rng.normal(size=(128, 5))
    yd = (xd.sum(axis=1) > 0).astype(np.int64)
    xr = rng.normal(size=(128, 5))
    yr = xr @ rng.normal(size=5)
    return (SplitData(xd[:96], yd[:96], xd[96:], yd[96:]),
            SplitData(xr[:96], yr[:96], xr[96:], yr[96:]))


def test_sweep_cache_speedup(tmp_path):
    """Warm sweep cache must keep re-sweeps >= 2x faster than training.

    Cold = layer-wise + pruning grids trained from scratch (the cache
    dir starts empty, so every point is a miss and is stored); warm =
    the identical sweeps again over the now-populated cache.  The warm
    frontier points must equal the cold ones exactly — the cache stores
    full float precision.
    """
    decision_data, calibrator_data = _sweep_splits()
    pair = train_pair(_SWEEP_SPECS[0], decision_data, calibrator_data,
                      2, _SWEEP_CFG)
    cache_dir = tmp_path / "sweeps"

    def run(stats):
        layerwise = layer_wise_sweep(
            decision_data, calibrator_data, 2, _SWEEP_SPECS, _SWEEP_CFG,
            stats=stats, cache_dir=cache_dir)
        pruning = pruning_sweep(
            pair, decision_data, calibrator_data, _SWEEP_GRID,
            _FINETUNE_CFG, stats=stats, cache_dir=cache_dir)
        return layerwise, pruning

    cold_stats = CampaignStats()
    start = time.perf_counter()
    cold_points = run(cold_stats)
    cold_s = time.perf_counter() - start
    assert cold_stats.counter("sweep_cache_miss") == (
        len(_SWEEP_SPECS) + len(_SWEEP_GRID))

    warm_stats = CampaignStats()
    warm_s = float("inf")
    for _ in range(3):
        warm_stats = CampaignStats()
        start = time.perf_counter()
        warm_points = run(warm_stats)
        warm_s = min(warm_s, time.perf_counter() - start)
    assert warm_stats.counter("sweep_cache_hit") == (
        len(_SWEEP_SPECS) + len(_SWEEP_GRID))
    assert warm_stats.counter("train_models") == 0
    assert warm_points == cold_points

    speedup = cold_s / warm_s
    _update_results("sweep_cache", {
        "layerwise_points": len(_SWEEP_SPECS),
        "pruning_points": len(_SWEEP_GRID),
        "cold_s": cold_s,
        "warm_s": warm_s,
        "speedup": speedup,
        "cold_train_models": cold_stats.counter("train_models"),
        "warm_cache_hits": warm_stats.counter("sweep_cache_hit"),
    })
    assert speedup >= 2.0, f"sweep cache speedup collapsed: {speedup:.2f}x"


# ---------------------------------------------------------------------------
# Population training: fused replicas vs a loop of serial train_pair
# ---------------------------------------------------------------------------

_REPLICA_SEEDS = (20, 21, 22, 23)
_REPLICA_SPEC = ArchitectureSpec((12,) * 3, (12,) * 2)
_REPLICA_CFG = TrainConfig(epochs=12, patience=4, seed=9)


def test_population_replicas_match_serial():
    """Fused replica training must agree with serial within 1e-6."""
    decision_data, calibrator_data = _sweep_splits()

    def fused():
        return train_pair_replicas(
            _REPLICA_SPEC, decision_data, calibrator_data, 2,
            _REPLICA_CFG, seeds=_REPLICA_SEEDS)

    def serial():
        return [train_pair(_REPLICA_SPEC, decision_data, calibrator_data,
                           2, _REPLICA_CFG, seed=seed)
                for seed in _REPLICA_SEEDS]

    fused_pairs, serial_pairs = fused(), serial()
    for got, want in zip(fused_pairs, serial_pairs):
        assert abs(got.accuracy_pct - want.accuracy_pct) <= 1e-6
        assert abs(got.mape_pct - want.mape_pct) <= 1e-6
        assert got.epochs_run == want.epochs_run

    fused_s = _best_of(fused, trials=3)
    serial_s = _best_of(serial, trials=3)
    _update_results("population_replicas", {
        "replicas": len(_REPLICA_SEEDS),
        "spec": _REPLICA_SPEC.label,
        "serial_s": serial_s,
        "fused_s": fused_s,
        "speedup": serial_s / fused_s,
        "max_accuracy_diff": max(
            abs(g.accuracy_pct - w.accuracy_pct)
            for g, w in zip(fused_pairs, serial_pairs)),
    })


def test_training_pipeline_reproducibility():
    """Same seeds -> identical scores, points and replica weights."""
    model, x, y, columns = _rfe_setup()
    first = permutation_importances(model, x, y, columns,
                                    np.random.default_rng(9))
    second = permutation_importances(model, x, y, columns,
                                     np.random.default_rng(9))
    assert np.array_equal(first, second)

    decision_data, calibrator_data = _sweep_splits()
    points_a = layer_wise_sweep(decision_data, calibrator_data, 2,
                                _SWEEP_SPECS[:1], _SWEEP_CFG)
    points_b = layer_wise_sweep(decision_data, calibrator_data, 2,
                                _SWEEP_SPECS[:1], _SWEEP_CFG)
    assert points_a == points_b

    replicas_a = train_pair_replicas(_REPLICA_SPEC, decision_data,
                                     calibrator_data, 2, _REPLICA_CFG,
                                     seeds=_REPLICA_SEEDS[:2])
    replicas_b = train_pair_replicas(_REPLICA_SPEC, decision_data,
                                     calibrator_data, 2, _REPLICA_CFG,
                                     seeds=_REPLICA_SEEDS[:2])
    for a, b in zip(replicas_a, replicas_b):
        for la, lb in zip(a.decision.layers, b.decision.layers):
            assert np.array_equal(la.weights, lb.weights)
        assert a.accuracy_pct == b.accuracy_pct
        assert a.mape_pct == b.mape_pct
    _update_results("reproducibility", {
        "rfe_scores_identical": True,
        "sweep_points_identical": True,
        "replica_weights_identical": True,
    })
