"""Benchmark result persistence.

Rendered tables/figures are printed *and* written under
``benchmarks/results/`` so they survive pytest's output capture and can
be diffed against EXPERIMENTS.md.
"""

from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def write_result(name: str, text: str) -> None:
    """Print a rendered artefact and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print("\n" + text)
