"""Ablation — V/f table granularity (extension).

The paper inherits a 6-point GTX Titan X operating table.  How much of
the achievable saving does that quantisation leave on the table?  This
bench resamples the V/f curve to 2-12 points and measures the oracle
policy's EDP at each granularity: the marginal gain of more points
quantifies whether the 6-point table (and hence the 6-way classifier)
is the right size.
"""

import dataclasses

from repro.gpu.simulator import GPUSimulator
from repro.gpu.vf import interpolated_vf_table, titan_x_vf_table
from repro.core.policy import ModelOraclePolicy, StaticPolicy
from repro.evaluation.reporting import format_table

PRESET = 0.10
GRANULARITIES = (2, 3, 4, 6, 9, 12)


def test_vf_granularity_ablation(arch, eval_kernels, benchmark):
    kernels = eval_kernels[:5]
    rows = []
    mean_edps = {}
    for num_levels in GRANULARITIES:
        table = interpolated_vf_table(titan_x_vf_table(), num_levels)
        test_arch = dataclasses.replace(arch, vf_table=table)
        edps = []
        for kernel in kernels:
            base = GPUSimulator(test_arch, kernel, seed=41).run(
                StaticPolicy(table.default_level), keep_records=False)
            oracle = GPUSimulator(test_arch, kernel, seed=41).run(
                ModelOraclePolicy(PRESET), keep_records=False)
            edps.append(oracle.edp / base.edp)
        mean_edps[num_levels] = sum(edps) / len(edps)
        rows.append([num_levels, round(mean_edps[num_levels], 4)])
    from _reporting import write_result
    write_result("ablation_vf_granularity", format_table(
        ["V/f points", "oracle normalized EDP"], rows,
        title=f"Oracle EDP vs operating-point granularity, "
              f"preset {PRESET:.0%}"))

    # Two points (on/off) must be clearly worse than six; beyond six
    # the marginal gain must be small (the paper's table is adequate).
    assert mean_edps[2] > mean_edps[6] + 0.005
    assert abs(mean_edps[12] - mean_edps[6]) < 0.02

    # Benchmark: the oracle's per-epoch decision at the finest table.
    table = interpolated_vf_table(titan_x_vf_table(), 12)
    test_arch = dataclasses.replace(arch, vf_table=table)
    simulator = GPUSimulator(test_arch, kernels[0].with_iterations(1000),
                             seed=41)
    policy = ModelOraclePolicy(PRESET)
    policy.reset(simulator)
    record = simulator.step_epoch()
    benchmark(lambda: policy.decide(record))
