"""Extension — heterogeneous multi-tenant GPU (per-cluster DVFS payoff).

The paper applies DVFS per cluster but evaluates homogeneous programs.
This bench deals *different* kernels across the 24 clusters (a compute
tenant and a memory tenant, duration-balanced) and compares per-cluster
SSMDVFS against every chip-wide static level, PCSTALL and the
utilization governor.  Per-cluster control is the only policy that can
serve both tenants at once; chip-wide settings must sacrifice one.

The seeded fleet benchmark extends tenancy beyond one chip: a bursty
two-class arrival trace replays over 16 SSMDVFS-controlled nodes
(``repro.fleet``) and the deterministic phase-2 queueing replay is
timed on its own.
"""

import numpy as np

from repro.baselines.governor import UtilizationGovernor
from repro.baselines.pcstall import PCSTALLPolicy
from repro.gpu.kernels import KernelProfile
from repro.gpu.phases import compute_phase, memory_phase
from repro.gpu.simulator import GPUSimulator
from repro.core.controller import SSMDVFSController
from repro.core.policy import StaticPolicy
from repro.evaluation.reporting import format_table
from repro.evaluation.residency import residency_from_records

PRESET = 0.10


def _tenants():
    """Duration-balanced compute + memory tenant pair.

    The memory tenant is DRAM-bandwidth-capped (IPC ~ 0.3), so its
    instruction budget is ~12x smaller than the compute tenant's for
    the same ~850 us wall-clock at the default operating point.
    """
    return [
        KernelProfile("mt.memory",
                      [memory_phase("m", 320_000, warps=48, l1_miss=0.85,
                                    l2_miss=0.85)],
                      iterations=1, jitter=0.06),
        KernelProfile("mt.compute",
                      [compute_phase("c", 450_000, warps=20)],
                      iterations=9, jitter=0.05),
    ]


def test_mixed_tenancy(pipeline, arch, benchmark):
    model = pipeline.model("pruned")

    # Every run gets a *fresh* tenant pair: a single shared list would
    # alias simulator-side state between policy runs, and the budgets
    # assertion below would no longer certify identical workloads.
    budgets = []

    def fresh_tenants():
        tenants = _tenants()
        budgets.append(sum(t.total_instructions for t in tenants))
        return tenants

    rows = []
    results = {}
    for level in range(arch.vf_table.num_levels):
        simulator = GPUSimulator(arch, fresh_tenants(), seed=23)
        run = simulator.run(StaticPolicy(level), keep_records=False)
        results[f"static-l{level}"] = run
    for policy_factory in (
        lambda: SSMDVFSController(model, PRESET),
        lambda: PCSTALLPolicy(PRESET),
        lambda: UtilizationGovernor(),
    ):
        policy = policy_factory()
        simulator = GPUSimulator(arch, fresh_tenants(), seed=23)
        results[policy.name] = simulator.run(policy, keep_records=True)

    # All policies competed on byte-identical instruction budgets.
    assert len(set(budgets)) == 1 and len(budgets) == len(results)

    base = results["static-l5"]
    for name, run in results.items():
        rows.append([name, round(run.time_s / base.time_s, 3),
                     round(run.energy_j / base.energy_j, 3),
                     round(run.edp / base.edp, 3)])
    from _reporting import write_result
    ssm_records = results[f"ssmdvfs-p{int(PRESET * 100)}"].records
    mem_levels = [r.levels[0] for r in ssm_records[2:-2]] or [5]
    cmp_levels = [r.levels[1] for r in ssm_records[2:-2]] or [5]
    detail = (f"ssmdvfs cluster residencies: memory tenant mean level "
              f"{np.mean(mem_levels):.2f}, compute tenant mean level "
              f"{np.mean(cmp_levels):.2f}")
    table = format_table(
        ["Policy", "latency", "energy", "EDP"], rows,
        title=f"Mixed tenancy (24 clusters, 2 tenants), preset {PRESET:.0%}")
    write_result("mixed_tenancy", table + "\n" + detail)

    ssm = results[f"ssmdvfs-p{int(PRESET * 100)}"]
    best_static_edp = min(run.edp for name, run in results.items()
                          if name.startswith("static"))
    # Per-cluster control must beat every chip-wide static on EDP...
    assert ssm.edp < best_static_edp
    # ...respect the preset...
    assert ssm.time_s / base.time_s < 1.0 + PRESET + 0.03
    # ...and actually differentiate the tenants.
    assert np.mean(mem_levels) < np.mean(cmp_levels) - 1.0
    # Residency sanity via the analysis helper.
    profile = residency_from_records(ssm_records, arch.vf_table.num_levels)
    assert 0.0 < profile.mean_level < 5.0

    # Benchmark: one mixed-tenancy epoch step.
    simulator = GPUSimulator(
        arch, [t.with_iterations(10_000) for t in _tenants()], seed=23)
    benchmark(simulator.step_epoch)


def test_fleet_replay(pipeline, arch, benchmark):
    """Seeded fleet replay: SSMDVFS nodes serving a bursty job stream.

    Full-scale extension of the fleet subsystem: 16 Titan-X nodes under
    per-node pruned-model controllers absorb a bursty two-class trace.
    Asserts the replay is seed-deterministic and that the latency class
    is not starved, then benchmarks the phase-2 discrete-event replay
    (scheduling overhead only; job simulations are reused).
    """
    from repro.fleet import (ClusterScheduler, TraceConfig, build_trace,
                             policy_factory)

    model = pipeline.model("pruned")
    factory = policy_factory("ssmdvfs", preset=PRESET, model=model)
    config = TraceConfig(trace="burst", jobs=24, nodes=16, load=0.8,
                         seed=11)
    jobs = build_trace(arch, config)

    def replay():
        scheduler = ClusterScheduler(arch, factory, num_nodes=16,
                                     policy_name="ssmdvfs", seed=11)
        return scheduler.run(jobs, trace_name="burst")

    result = replay()
    assert result.to_payload() == replay().to_payload()
    assert len(result.outcomes) == len(jobs)
    # At 0.8 offered load the latency class must stay within its SLO.
    assert result.slo_violation_rate("latency") <= 0.25

    from _reporting import write_result
    write_result("fleet_replay", result.render())

    # Benchmark only the serial queueing replay — the new scheduler
    # code path — against precomputed per-job service outcomes.
    ordered = sorted(jobs, key=lambda j: (j.arrival_s, j.job_id))
    service = {o.job_id: (o.service_s, o.energy_j, o.epochs,
                          o.mean_level, {})
               for o in result.outcomes}
    scheduler = ClusterScheduler(arch, factory, num_nodes=16,
                                 policy_name="ssmdvfs", seed=11)
    benchmark(lambda: scheduler._replay(ordered, service, "burst"))
