"""Extension — heterogeneous multi-tenant GPU (per-cluster DVFS payoff).

The paper applies DVFS per cluster but evaluates homogeneous programs.
This bench deals *different* kernels across the 24 clusters (a compute
tenant and a memory tenant, duration-balanced) and compares per-cluster
SSMDVFS against every chip-wide static level, PCSTALL and the
utilization governor.  Per-cluster control is the only policy that can
serve both tenants at once; chip-wide settings must sacrifice one.
"""

import numpy as np

from repro.baselines.governor import UtilizationGovernor
from repro.baselines.pcstall import PCSTALLPolicy
from repro.gpu.kernels import KernelProfile
from repro.gpu.phases import compute_phase, memory_phase
from repro.gpu.simulator import GPUSimulator
from repro.core.controller import SSMDVFSController
from repro.core.policy import StaticPolicy
from repro.evaluation.reporting import format_table
from repro.evaluation.residency import residency_from_records

PRESET = 0.10


def _tenants():
    """Duration-balanced compute + memory tenant pair.

    The memory tenant is DRAM-bandwidth-capped (IPC ~ 0.3), so its
    instruction budget is ~12x smaller than the compute tenant's for
    the same ~850 us wall-clock at the default operating point.
    """
    return [
        KernelProfile("mt.memory",
                      [memory_phase("m", 320_000, warps=48, l1_miss=0.85,
                                    l2_miss=0.85)],
                      iterations=1, jitter=0.06),
        KernelProfile("mt.compute",
                      [compute_phase("c", 450_000, warps=20)],
                      iterations=9, jitter=0.05),
    ]


def test_mixed_tenancy(pipeline, arch, benchmark):
    model = pipeline.model("pruned")
    tenants = _tenants()

    rows = []
    results = {}
    for level in range(arch.vf_table.num_levels):
        simulator = GPUSimulator(arch, tenants, seed=23)
        run = simulator.run(StaticPolicy(level), keep_records=False)
        results[f"static-l{level}"] = run
    for policy_factory in (
        lambda: SSMDVFSController(model, PRESET),
        lambda: PCSTALLPolicy(PRESET),
        lambda: UtilizationGovernor(),
    ):
        policy = policy_factory()
        simulator = GPUSimulator(arch, tenants, seed=23)
        results[policy.name] = simulator.run(policy, keep_records=True)

    base = results["static-l5"]
    for name, run in results.items():
        rows.append([name, round(run.time_s / base.time_s, 3),
                     round(run.energy_j / base.energy_j, 3),
                     round(run.edp / base.edp, 3)])
    from _reporting import write_result
    ssm_records = results[f"ssmdvfs-p{int(PRESET * 100)}"].records
    mem_levels = [r.levels[0] for r in ssm_records[2:-2]] or [5]
    cmp_levels = [r.levels[1] for r in ssm_records[2:-2]] or [5]
    detail = (f"ssmdvfs cluster residencies: memory tenant mean level "
              f"{np.mean(mem_levels):.2f}, compute tenant mean level "
              f"{np.mean(cmp_levels):.2f}")
    table = format_table(
        ["Policy", "latency", "energy", "EDP"], rows,
        title=f"Mixed tenancy (24 clusters, 2 tenants), preset {PRESET:.0%}")
    write_result("mixed_tenancy", table + "\n" + detail)

    ssm = results[f"ssmdvfs-p{int(PRESET * 100)}"]
    best_static_edp = min(run.edp for name, run in results.items()
                          if name.startswith("static"))
    # Per-cluster control must beat every chip-wide static on EDP...
    assert ssm.edp < best_static_edp
    # ...respect the preset...
    assert ssm.time_s / base.time_s < 1.0 + PRESET + 0.03
    # ...and actually differentiate the tenants.
    assert np.mean(mem_levels) < np.mean(cmp_levels) - 1.0
    # Residency sanity via the analysis helper.
    profile = residency_from_records(ssm_records, arch.vf_table.num_levels)
    assert 0.0 < profile.mean_level < 5.0

    # Benchmark: one mixed-tenancy epoch step.
    simulator = GPUSimulator(
        arch, [t.with_iterations(10_000) for t in tenants], seed=23)
    benchmark(simulator.step_epoch)
