"""Substrate validation — interval model vs per-cycle detailed model.

Not a paper artefact, but the credibility check behind every other
bench: the fast interval model that drives all experiments must agree
with a per-cycle SM/cache/memory simulation on the quantities DVFS
decisions hinge on — instruction-rate sensitivity to frequency for
compute- and memory-bound phases.
"""

from repro.gpu.detailed.sm import DetailedSM
from repro.gpu.interval_model import solve_throughput
from repro.gpu.phases import balanced_phase, compute_phase, memory_phase
from repro.evaluation.reporting import format_table

F_HI = 1165e6
F_LO = 683e6
WINDOW_CYCLES = 8000


def _sensitivity_detailed(arch, phase, seed):
    hi = DetailedSM(arch, phase, F_HI, seed=seed).run(WINDOW_CYCLES)
    lo = DetailedSM(arch, phase, F_LO, seed=seed).run(WINDOW_CYCLES)
    return (hi.ipc * F_HI) / (lo.ipc * F_LO)


def _sensitivity_interval(arch, phase):
    hi = solve_throughput(arch, phase, F_HI)
    lo = solve_throughput(arch, phase, F_LO)
    return (hi.ipc * F_HI) / (lo.ipc * F_LO)


def test_model_agreement(arch, benchmark):
    phases = [
        ("compute", compute_phase("c", 10_000, warps=16)),
        ("balanced", balanced_phase("b", 10_000, warps=40)),
        ("memory", memory_phase("m", 10_000, warps=32)),
    ]
    rows = []
    for name, phase in phases:
        detailed = _sensitivity_detailed(arch, phase, seed=7)
        interval = _sensitivity_interval(arch, phase)
        rows.append([name, round(detailed, 3), round(interval, 3)])
    from _reporting import write_result
    write_result("model_agreement", format_table(
        ["Phase", "detailed sensitivity", "interval sensitivity"], rows,
        title="Instruction-rate sensitivity (f_max vs f_min), two models"))

    by_name = {r[0]: r for r in rows}
    # Ordering must agree: compute most sensitive, memory least.
    assert by_name["compute"][1] > by_name["balanced"][1] > 0.95
    assert by_name["compute"][1] > by_name["memory"][1]
    # Compute clearly sensitive in both; memory clearly insensitive.
    assert by_name["compute"][1] > 1.4 and by_name["compute"][2] > 1.4
    assert by_name["memory"][1] < 1.3 and by_name["memory"][2] < 1.3

    # Benchmark: one detailed-model window (the expensive side).
    phase = phases[1][1]
    benchmark(lambda: DetailedSM(arch, phase, F_HI, seed=1).run(2000))
