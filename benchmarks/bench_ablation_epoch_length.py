"""Ablation — why *microsecond-scale* DVFS (paper §I / §II premise).

The paper's motivation rests on integrated voltage regulators enabling
10 us epochs.  This bench quantifies the premise on our substrate: an
oracle policy (perfect per-phase decisions) steering phase-swinging
programs at epoch lengths from 10 us to 160 us.  Coarser epochs hold a
single operating point across phase changes, so EDP degrades as the
epoch grows — the headroom microsecond-scale DVFS exists to harvest.
"""

import numpy as np

from repro.gpu.kernels import KernelProfile
from repro.gpu.phases import compute_phase, memory_phase
from repro.gpu.simulator import GPUSimulator
from repro.core.policy import ModelOraclePolicy, StaticPolicy
from repro.evaluation.reporting import format_table
from repro.units import us

EPOCH_LENGTHS_US = (10.0, 20.0, 40.0, 80.0, 160.0)
PRESET = 0.10


def _swinging_kernel():
    """Compute/memory phases alternating every ~2 epochs at 10 us."""
    return KernelProfile(
        "abl.swing",
        [compute_phase("c", 90_000, warps=16),
         memory_phase("m", 80_000, warps=48, l1_miss=0.85, l2_miss=0.85)],
        iterations=20, jitter=0.05)


def test_epoch_length_ablation(arch, benchmark):
    kernel = _swinging_kernel()
    base = GPUSimulator(arch, kernel, seed=7, epoch_s=us(10)).run(
        StaticPolicy(arch.vf_table.default_level), keep_records=False)

    rows = []
    edps = []
    for epoch_us in EPOCH_LENGTHS_US:
        simulator = GPUSimulator(arch, kernel, seed=7, epoch_s=us(epoch_us))
        result = simulator.run(ModelOraclePolicy(PRESET), keep_records=False)
        edp = result.edp / base.edp
        latency = result.time_s / base.time_s
        edps.append(edp)
        rows.append([f"{epoch_us:.0f} us", round(edp, 4), round(latency, 4)])
    from _reporting import write_result
    write_result("ablation_epoch_length", format_table(
        ["Epoch length", "normalized EDP", "normalized latency"], rows,
        title="Oracle DVFS vs epoch length (phase-swinging program)"))

    # Finer epochs must not be worse, and the microsecond scale must
    # beat the coarsest (regulator-less) granularity clearly.
    assert edps[0] <= min(edps) + 1e-9 or edps[0] <= edps[-1]
    assert edps[0] < edps[-1] - 0.005

    # Benchmark: one coarse epoch step (the 160 us case dominates the
    # sweep's wall-clock cost).
    simulator = GPUSimulator(arch, kernel.with_iterations(10_000), seed=7,
                             epoch_s=us(160))
    benchmark(simulator.step_epoch)
