"""Fig. 3 — FLOPs vs accuracy and MAPE for layer-wise compression and
pruning.

Regenerates both frontiers: retrain-from-scratch architectures across a
(layers x width) grid, and magnitude+neuron pruning across an (x1, x2)
grid with fine-tuning.  Asserts the paper's two qualitative claims:
accuracy falls off a cliff below a FLOPs knee, and the pruning frontier
dominates layer-wise-only compression at small FLOPs budgets.
"""

from repro.nn.compress import ArchitectureSpec
from repro.nn.trainer import TrainConfig
from repro.evaluation.experiments import run_fig3

#: Reduced grid: representative depths/widths (full grid takes minutes).
SPECS = [
    ArchitectureSpec((20,) * 5, (20,) * 4),
    ArchitectureSpec((20,) * 3, (20,) * 2),
    ArchitectureSpec((12,) * 3, (12,) * 2),
    ArchitectureSpec((8,) * 3, (8,) * 2),
    ArchitectureSpec((4,) * 2, (4,) * 1),
    ArchitectureSpec((2,) * 2, (2,) * 1),
]

GRID = [(0.2, 0.9), (0.4, 0.9), (0.6, 0.9), (0.75, 0.9), (0.9, 0.9)]


def test_fig3_compression_frontiers(pipeline, benchmark):
    result = run_fig3(
        pipeline, specs=SPECS, grid=GRID,
        train_config=TrainConfig(epochs=60, patience=12,
                                 learning_rate=2e-3, seed=3),
        seed=3)
    from _reporting import write_result
    write_result("fig3_compression", result.render())

    # Knee: below some FLOPs threshold accuracy collapses, on both
    # frontiers (the qualitative shape of Fig. 3).
    points = sorted(result.layerwise, key=lambda p: p.flops)
    best = max(p.accuracy_pct for p in points)
    assert points[0].accuracy_pct < best - 5.0, (
        "tiniest architecture should fall off the accuracy cliff")
    assert result.knee_flops(accuracy_drop_pp=5.0) < points[-1].flops
    assert result.has_knee()

    # The pruning frontier must stay competitive with layer-wise
    # compression.  (The paper reports it *dominating*; on this cleaner
    # substrate retrain-from-scratch is stronger — see EXPERIMENTS.md —
    # so the assertion is the substrate-robust form.)
    assert result.pruning_competitive(tolerance_pp=4.0)

    # Every pruning point must actually be sparse.
    assert all(p.sparsity > 0.1 for p in result.pruning)

    # Benchmark: one fine-tuning epoch equivalent — a forward+backward
    # pass over a training batch of the base decision model.
    prepared = pipeline.prepared
    model = pipeline.pairs["base"].decision.clone()
    from repro.nn.losses import SoftmaxCrossEntropy
    loss_fn = SoftmaxCrossEntropy()
    x = prepared.decision.x_train[:64]
    y = prepared.decision.y_train[:64]

    def train_step():
        out = model.forward(x, train=True)
        _, grad = loss_fn(out, y)
        model.backward(grad)

    benchmark(train_step)
