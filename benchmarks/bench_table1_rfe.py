"""Table I — RFE feature selection down to 3 indirect features + power.

Regenerates the paper's Table I: the selected counters per metric
category, and the accuracy cost of the refinement (paper: 0.48 pp).
"""

import numpy as np

from repro.datagen.rfe import RFESelector, _permutation_importance
from repro.gpu.counters import paper_category
from repro.nn.trainer import TrainConfig
from repro.evaluation.experiments import run_table1


def test_table1_feature_selection(dataset, arch, benchmark):
    result = run_table1(dataset, arch, seed=3)
    from _reporting import write_result
    write_result("table1_rfe", result.render())

    # Shape assertions mirroring the paper's Table I.
    assert len(result.rfe.selected) == 3
    assert "power_per_core" in result.rfe.all_features
    categories = {paper_category(name) for name in result.rfe.selected}
    # The indirect selection must carry stall and/or instruction signal.
    assert categories <= {"stall", "instruction"}
    assert "stall" in categories
    # Refinement must not cost much accuracy (paper: 0.48 pp).
    assert result.rfe.accuracy_drop_pct < 8.0

    # Benchmark: one permutation-importance evaluation (the inner loop
    # of RFE) on the final refined model.
    selector = RFESelector(dataset, arch.issue_width,
                           candidates=result.rfe.selected,
                           target_count=len(result.rfe.selected),
                           train_config=TrainConfig(epochs=10, patience=5,
                                                    seed=3),
                           seed=3)
    model, _, x_test, y_test = selector._train_and_score(
        result.rfe.selected, seed=3)
    rng = np.random.default_rng(0)
    benchmark(lambda: _permutation_importance(model, x_test, y_test, 1, rng))
