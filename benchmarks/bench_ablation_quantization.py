"""Ablation — controller precision (ties into §V-D).

The paper's ASIC module computes in FP32.  This bench quantizes the
deployed model to 16- and 8-bit fixed point and re-runs a slice of the
Fig. 4 evaluation: if 16-bit matches FP32 behaviour, the hardware could
halve its SRAM and MAC width; the comparison quantifies the decision
agreement at each precision.
"""

import numpy as np

from repro.gpu.simulator import GPUSimulator
from repro.core.controller import SSMDVFSController
from repro.core.policy import StaticPolicy
from repro.evaluation.reporting import format_table

PRESET = 0.10


def _run(policy, arch, kernel, seed=9):
    simulator = GPUSimulator(arch, kernel, seed=seed)
    return simulator.run(policy, keep_records=True)


def test_quantization_ablation(pipeline, eval_kernels, arch, benchmark):
    model_fp = pipeline.model("pruned")
    variants = {
        "fp64": model_fp,
        "q16": model_fp.quantized(16),
        "q8": model_fp.quantized(8),
    }
    kernels = eval_kernels[:4]

    rows = []
    edp = {name: [] for name in variants}
    agreement = {name: [] for name in variants}
    for kernel in kernels:
        base = _run(StaticPolicy(arch.vf_table.default_level), arch, kernel)
        reference_levels = None
        for name, model in variants.items():
            result = _run(SSMDVFSController(model, PRESET), arch, kernel)
            edp[name].append(result.edp / base.edp)
            levels = [lvl for record in result.records
                      for lvl in record.levels]
            if reference_levels is None:
                reference_levels = levels
                agreement[name].append(1.0)
            else:
                n = min(len(levels), len(reference_levels))
                matches = sum(a == b for a, b in
                              zip(levels[:n], reference_levels[:n]))
                agreement[name].append(matches / n if n else 1.0)
    for name in variants:
        rows.append([name, round(float(np.mean(edp[name])), 4),
                     round(float(np.mean(agreement[name])), 4)])
    from _reporting import write_result
    write_result("ablation_quantization", format_table(
        ["Precision", "mean normalized EDP", "decision agreement"], rows,
        title=f"Controller precision ablation, preset {PRESET:.0%}"))

    by_name = {r[0]: r for r in rows}
    # 16-bit fixed point must be behaviourally indistinguishable.
    assert by_name["q16"][2] > 0.98
    assert abs(by_name["q16"][1] - by_name["fp64"][1]) < 0.01
    # 8-bit may drift, but must still save EDP and stay mostly aligned.
    assert by_name["q8"][1] < 1.0
    assert by_name["q8"][2] > 0.7

    # Benchmark: one quantized-model decision inference.
    q16 = variants["q16"]
    x = np.zeros((1, q16.decision_model.input_size))
    benchmark(lambda: q16.decision_model.predict_class(x))
