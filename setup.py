"""Setuptools shim.

Metadata lives in ``pyproject.toml``; this file exists so editable
installs work in offline environments that lack the ``wheel`` package
(legacy ``pip install -e .`` path).
"""

from setuptools import setup

setup()
