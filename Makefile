# Developer / CI entry points.
#
# `test-fast` is the tier-1 gate: the full unit suite minus tests marked
# `slow` (per-cycle simulation windows).  `bench-smoke` exercises the
# simulator-throughput and parallel-campaign benchmarks once without
# timing repetition, so the process-pool fan-out path runs in CI without
# slowing the gate down.  It also runs the epoch-engine perf gate
# (solution-cache and batched-inference speedups, self-timed with
# perf_counter) and writes benchmarks/results/BENCH_epoch_engine.json,
# which CI uploads as an artifact.  `train-bench-smoke` is the matching
# gate for the offline training pipeline (batched RFE scoring, sweep
# cache, population replicas); it writes
# benchmarks/results/BENCH_training_pipeline.json.
# `fused-bench-smoke` is the fused-campaign perf gate: it asserts the
# fused engine reproduces the serial grid byte-for-byte and beats the
# process-pool fan-out >= 3x, and writes
# benchmarks/results/BENCH_fused_sim.json.
# `quantum-bench-smoke` is the vectorised-quantum-kernel perf gate: it
# asserts the batched epoch engine and the fused V/f-grid replay are
# byte-identical to the scalar hot path and beat it >= 2.5x / >= 2x,
# and writes benchmarks/results/BENCH_quantum_kernel.json.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test test-fast test-slow bench-smoke train-bench-smoke \
	fused-bench-smoke quantum-bench-smoke bench faults-smoke soak-smoke \
	fleet-smoke fleet-chaos-smoke serve-chaos-smoke

test-fast:
	$(PYTHON) -m pytest -q -m "not slow"

# Fault-injection smoke: a small sweep over every fault mode (including
# 100% sensor dropout, which must engage the guard's fallback) plus the
# resilience-focused test modules.  Zero unhandled exceptions expected.
# The sweep runs twice — serial and fused — because faulty/guarded
# wrappers take the engine's solo-decision path, which must survive the
# same fault menu.
faults-smoke:
	$(PYTHON) -m repro.cli faults --small --mode all --rates 0 1.0 \
		--kernels 1 --duration-us 60 --stats
	$(PYTHON) -m repro.cli faults --small --mode all --rates 0 1.0 \
		--kernels 1 --duration-us 60 --stats --fused
	$(PYTHON) -m pytest -q tests/test_faults.py tests/test_parallel.py

# Chaos-soak smoke: self-trains a small pair through the dataset cache,
# registers it as last-known-good, then soaks it under 1% sensor faults
# with a mid-run stale-model injection and crash-write torture.  The
# CLI exits non-zero on any invariant violation (NaN decision, latency
# over preset+slack, unhealed drift, torn read), which fails the job.
# Deliberately outside the tier-1 `test-fast` gate.
soak-smoke:
	$(PYTHON) -m repro.cli soak --small --breakpoints 4 --kernels 2 \
		--cache .cache --store .cache/store --stats \
		--export benchmarks/results/SOAK_smoke.json

# Fleet smoke: replay a bursty two-class trace over 16 simulated GPUs
# under per-node governors and gate on the SLO-violation rate — the CLI
# exits non-zero when more than 5% of jobs miss their deadline, so a
# scheduler regression (EDF ordering, placement, replay accounting)
# fails the job.  The JSON export is byte-stable per seed and uploaded
# by CI as an artifact.  Outside the tier-1 `test-fast` gate.
fleet-smoke:
	$(PYTHON) -m repro.cli fleet --small --nodes 16 --jobs 48 \
		--trace burst --policy governor --load 0.7 --stats \
		--slo-gate 0.05 --export benchmarks/results/FLEET_smoke.json
	$(PYTHON) -m pytest -q tests/test_fleet.py

# Fleet-chaos smoke: randomized node-fault trains (crash, hang, thermal
# runaway, sensor storms) against the fleet replay, with admission
# control on.  The CLI exits non-zero if any fleet invariant breaks —
# a job lost or double-counted, a seed whose export is not byte-stable
# across worker counts, a node wedged in quarantine, or a latency-class
# job admission-shed.  Crash-write torture hits the exported payload
# through the artifact store.  Outside the tier-1 `test-fast` gate.
fleet-chaos-smoke:
	$(PYTHON) -m repro.cli fleet-chaos --small --nodes 4 --jobs 16 \
		--trials 2 --seed 7 --store .cache/chaos-store --stats \
		--export benchmarks/results/FLEET_chaos_smoke.json
	$(PYTHON) -m pytest -q tests/test_fleet_resilience.py

# Serve-chaos smoke: seeded fault trains (worker crashes/hangs,
# inference stalls, telemetry storms/gaps, poisoned updates, overload
# bursts) against the always-on serving runtime.  The CLI exits
# non-zero if any serving invariant breaks — an invalid decision
# served, a request lost or double-counted, a worker outage past the
# recovery budget, a non-byte-stable replay, or a deadline-class
# request shed under capacity.  The exported payload is atomic and
# byte-stable per seed; CI uploads it as an artifact.  Outside the
# tier-1 `test-fast` gate.
serve-chaos-smoke:
	$(PYTHON) -m repro.cli serve-chaos --small --streams 2 --ticks 160 \
		--trials 2 --seed 7 --store .cache/serve-chaos-store --stats \
		--export benchmarks/results/SERVE_chaos_smoke.json
	$(PYTHON) -m pytest -q tests/test_serve.py tests/test_serve_chaos.py

test:
	$(PYTHON) -m pytest -q

test-slow:
	$(PYTHON) -m pytest -q -m slow

bench-smoke:
	$(PYTHON) -m pytest -q benchmarks/bench_sim_throughput.py --benchmark-disable

train-bench-smoke:
	$(PYTHON) -m pytest -q benchmarks/bench_training_pipeline.py --benchmark-disable

fused-bench-smoke:
	$(PYTHON) -m pytest -q tests/test_fused.py
	$(PYTHON) -m pytest -q \
		benchmarks/bench_sim_throughput.py::test_fused_campaign_speedup \
		--benchmark-disable

quantum-bench-smoke:
	$(PYTHON) -m pytest -q tests/test_quantum.py
	$(PYTHON) -m pytest -q \
		benchmarks/bench_sim_throughput.py::test_quantum_kernel_speedup \
		--benchmark-disable

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only
