"""ASIC cost model (§V-D) and technology scaling."""

import pytest

from repro.errors import HardwareModelError
from repro.hardware.asic import ASICConfig, ASICModel
from repro.hardware.scaling import (scale_area, scale_energy, scale_power,
                                    supported_nodes)
from repro.nn.mlp import MLP
from repro.nn.prune import prune_model
from repro.units import us


def _paper_like_models():
    """Compressed-scale Decision/Calibrator pair (3+2 layers of 12)."""
    decision = MLP([6, 12, 12, 12, 6])
    calibrator = MLP([7, 12, 12, 1])
    return [decision, calibrator]


# ---------------------------------------------------------------------------
# Scaling
# ---------------------------------------------------------------------------

def test_scaling_reference_is_identity():
    assert scale_area(1.0, 65, 65) == pytest.approx(1.0)
    assert scale_energy(1.0, 65, 65) == pytest.approx(1.0)


def test_scaling_shrinks_toward_smaller_nodes():
    assert scale_area(1.0, 65, 28) < 0.5
    assert scale_energy(1.0, 65, 28) < 0.5
    assert scale_area(1.0, 65, 90) > 1.0


def test_scaling_is_transitive():
    via_45 = scale_area(scale_area(1.0, 65, 45), 45, 28)
    direct = scale_area(1.0, 65, 28)
    assert via_45 == pytest.approx(direct)


def test_scale_power_matches_energy():
    assert scale_power(2.0, 65, 28) == pytest.approx(scale_energy(2.0, 65, 28))


def test_unknown_node_rejected():
    with pytest.raises(HardwareModelError):
        scale_area(1.0, 65, 10)
    assert 28 in supported_nodes()


def test_negative_values_rejected():
    with pytest.raises(HardwareModelError):
        scale_area(-1.0, 65, 28)
    with pytest.raises(HardwareModelError):
        scale_energy(-1.0, 65, 28)


# ---------------------------------------------------------------------------
# ASIC model
# ---------------------------------------------------------------------------

def test_config_validation():
    with pytest.raises(HardwareModelError):
        ASICConfig(num_macs=0)
    with pytest.raises(HardwareModelError):
        ASICConfig(clock_hz=0)
    with pytest.raises(HardwareModelError):
        ASICConfig(mac_energy_j=0)
    with pytest.raises(HardwareModelError):
        ASICConfig(leakage_fraction=1.0)


def test_cycles_scale_with_model_size():
    asic = ASICModel()
    small = [MLP([4, 8, 2])]
    large = [MLP([4, 64, 64, 2])]
    assert (asic.cycles_per_inference(small)
            < asic.cycles_per_inference(large))


def test_more_macs_fewer_cycles():
    models = _paper_like_models()
    one = ASICModel(ASICConfig(num_macs=1)).cycles_per_inference(models)
    four = ASICModel(ASICConfig(num_macs=4)).cycles_per_inference(models)
    assert four < one


def test_sparsity_reduces_cycles_and_energy():
    asic = ASICModel()
    models = _paper_like_models()
    dense_cycles = asic.cycles_per_inference(models, sparse=False)
    for model in models:
        prune_model(model, 0.6, 0.9)
    sparse_cycles = asic.cycles_per_inference(models, sparse=True)
    assert sparse_cycles < dense_cycles
    assert (asic.energy_per_inference_j(models, sparse=True)
            < asic.energy_per_inference_j(models, sparse=False))


def test_report_paper_scale_numbers():
    """The compressed module must land in the paper's §V-D ballpark:
    a few hundred cycles, well under a mm^2, milliwatt-class power."""
    models = _paper_like_models()
    for model in models:
        prune_model(model, 0.6, 0.9)
    report = ASICModel().report(models, sparse=True, node_nm=28)
    assert 50 <= report.cycles_per_inference <= 800
    assert report.latency_us < 1.0
    assert report.area_mm2_scaled < 0.1
    assert report.power_w_scaled < 0.1
    assert report.epoch_fraction(us(10)) < 0.10
    assert report.tdp_fraction(250.0) < 1e-3


def test_area_scaled_smaller_than_reference():
    report = ASICModel().report(_paper_like_models(), node_nm=28)
    assert report.area_mm2_scaled < report.area_mm2_reference


def test_report_fraction_validation():
    report = ASICModel().report(_paper_like_models())
    with pytest.raises(HardwareModelError):
        report.epoch_fraction(0.0)
    with pytest.raises(HardwareModelError):
        report.tdp_fraction(0.0)


def test_empty_model_list_rejected():
    with pytest.raises(HardwareModelError):
        ASICModel().cycles_per_inference([])
