"""Drift detection, registry rollback, and guarded self-healing."""

import numpy as np
import pytest

from repro.core.combined import PAIR_SCHEMA, SSMDVFSModel
from repro.core.controller import SSMDVFSController
from repro.core.drift import DriftConfig, DriftMonitor, RollbackManager
from repro.core.guarded import ACTIVE, FALLBACK, PROBATION, GuardedController
from repro.core.policy import StaticPolicy
from repro.errors import ArtifactCorrupt, DriftDetected, PolicyError
from repro.evaluation.soak import perturb_model_weights
from repro.gpu.kernels import KernelProfile
from repro.gpu.phases import balanced_phase
from repro.gpu.simulator import GPUSimulator
from repro.store import ArtifactStore


def _kernel(iterations=40):
    return KernelProfile("d.balanced", [balanced_phase("b", 120_000)],
                         iterations=iterations, jitter=0.05)


# ---------------------------------------------------------------------------
# DriftMonitor
# ---------------------------------------------------------------------------

def test_drift_config_validates():
    with pytest.raises(PolicyError):
        DriftConfig(ewma_alpha=0.0)
    with pytest.raises(PolicyError):
        DriftConfig(cusum_limit=0.0)
    with pytest.raises(PolicyError):
        DriftConfig(violation_threshold=1.5)
    with pytest.raises(PolicyError):
        DriftConfig(warmup_updates=-1)


def test_monitor_warmup_suppresses_alarms():
    monitor = DriftMonitor(DriftConfig(warmup_updates=10, cusum_slack=0.0,
                                       cusum_limit=0.5))
    assert all(not monitor.update(1.0) for _ in range(10))
    assert monitor.update(1.0)  # first post-warmup update alarms


def test_monitor_noise_washes_out_but_sustained_drift_alarms():
    monitor = DriftMonitor(DriftConfig(warmup_updates=0))
    # Healthy noise below the slack never accumulates.
    for _ in range(500):
        assert not monitor.update(0.1)
    assert monitor.cusum == 0.0
    # A sustained saturated gap crosses the limit within a few epochs.
    alarmed_after = None
    for epoch in range(1, 20):
        if monitor.update(1.0):
            alarmed_after = epoch
            break
    assert alarmed_after is not None and alarmed_after <= 5
    # The alarm latches: further updates do not re-alarm until reset.
    assert monitor.drifted
    assert not monitor.update(1.0)
    monitor.reset()
    assert not monitor.drifted
    assert monitor.cusum == 0.0


def test_monitor_violation_pressure_path():
    monitor = DriftMonitor(DriftConfig(warmup_updates=0, violation_alpha=0.3,
                                       violation_threshold=0.6))
    # Gap stays clean; only the pinned-at-floor flag accumulates.
    alarmed = False
    for _ in range(20):
        if monitor.update(0.0, violation=True):
            alarmed = True
            break
    assert alarmed
    assert monitor.counters["drift_alarms"] == 1


def test_monitor_none_gap_skips_gap_statistics():
    monitor = DriftMonitor(DriftConfig(warmup_updates=0))
    for _ in range(50):
        monitor.update(None)
    assert monitor.cusum == 0.0
    assert monitor.updates == 50


def test_monitor_nonfinite_gap_counts_as_drift_evidence():
    monitor = DriftMonitor(DriftConfig(warmup_updates=0))
    for _ in range(10):
        monitor.update(float("nan"))
    assert monitor.counters["drift_nonfinite_gaps"] == 10
    assert monitor.cusum > 0.0


# ---------------------------------------------------------------------------
# Controller drift signal
# ---------------------------------------------------------------------------

def test_controller_exposes_raw_calibration_gap(small_arch, small_pipeline):
    model = small_pipeline.models["base"]
    controller = SSMDVFSController(model, preset=0.10)
    simulator = GPUSimulator(small_arch, _kernel(), seed=0)
    simulator.run(controller, keep_records=False)
    gap, violation = controller.drift_signal()
    assert gap is not None and -1.0 <= gap <= 1.0
    assert isinstance(violation, bool)


def test_perturbed_model_produces_detectable_gap(small_arch, small_pipeline):
    model = SSMDVFSModel.from_bytes(small_pipeline.models["base"].to_bytes())
    perturb_model_weights(model, 3.0, np.random.default_rng(0))
    controller = SSMDVFSController(model, preset=0.10)
    monitor = DriftMonitor()
    simulator = GPUSimulator(small_arch, _kernel(), seed=0)
    controller.reset(simulator)
    alarmed = False
    while not simulator.finished:
        record = simulator.step_epoch()
        if record.all_finished:
            break
        decision = controller.decide(record)
        simulator.apply_decision(decision)
        gap, violation = controller.drift_signal()
        if monitor.update(gap, violation):
            alarmed = True
            break
    assert alarmed


# ---------------------------------------------------------------------------
# RollbackManager
# ---------------------------------------------------------------------------

def test_rollback_recovers_last_known_good(tmp_path, small_pipeline):
    model = small_pipeline.models["base"]
    store = ArtifactStore(tmp_path)
    store.put("pair", model.to_bytes(), schema=PAIR_SCHEMA, mark_good=True)
    manager = RollbackManager(
        store, "pair", lambda m: SSMDVFSController(m, preset=0.10))
    restored = manager.recover()
    assert isinstance(restored, SSMDVFSController)
    counters = manager.observability_counters()
    assert counters["rollback_successes"] == 1
    assert counters["rollback_restored_version"] == 1


def test_rollback_skips_corrupt_version_then_exhausts(tmp_path,
                                                      small_pipeline):
    model = small_pipeline.models["base"]
    store = ArtifactStore(tmp_path)
    version = store.put("pair", model.to_bytes(), schema=PAIR_SCHEMA,
                        mark_good=True)
    path = tmp_path / "pair" / f"v{version:06d}.art"
    blob = bytearray(path.read_bytes())
    blob[len(blob) // 2] ^= 0xFF
    path.write_bytes(bytes(blob))
    manager = RollbackManager(
        store, "pair", lambda m: SSMDVFSController(m, preset=0.10))
    assert manager.recover() is None
    counters = manager.observability_counters()
    assert counters["rollback_corrupt_versions"] == 1
    assert counters["rollback_exhausted"] == 1


def test_rollback_rejects_nonfinite_weights(tmp_path, small_pipeline):
    model = SSMDVFSModel.from_bytes(small_pipeline.models["base"].to_bytes())
    model.decision_model.layers[0].weights[0, 0] = float("nan")
    store = ArtifactStore(tmp_path)
    store.put("pair", model.to_bytes(), schema=PAIR_SCHEMA, mark_good=True)
    manager = RollbackManager(
        store, "pair", lambda m: SSMDVFSController(m, preset=0.10))
    assert manager.recover() is None
    assert manager.observability_counters()[
        "rollback_unverified_versions"] == 1


def test_rollback_empty_store_returns_none(tmp_path):
    manager = RollbackManager(ArtifactStore(tmp_path), "pair", lambda m: m)
    assert manager.recover() is None


# ---------------------------------------------------------------------------
# Pair byte serialization
# ---------------------------------------------------------------------------

def test_pair_bytes_round_trip(small_pipeline, small_arch):
    model = small_pipeline.models["base"]
    clone = SSMDVFSModel.from_bytes(model.to_bytes())
    assert clone.feature_names == model.feature_names
    assert clone.num_levels == model.num_levels
    assert clone.metadata == model.metadata
    for a, b in zip(model.decision_model.layers,
                    clone.decision_model.layers):
        assert np.array_equal(a.weights, b.weights)
    assert clone.verify()


def test_pair_from_garbage_bytes_raises_artifact_corrupt():
    with pytest.raises(ArtifactCorrupt):
        SSMDVFSModel.from_bytes(b"not an npz archive")


def test_pair_verify_rejects_nonfinite(small_pipeline):
    model = SSMDVFSModel.from_bytes(small_pipeline.models["base"].to_bytes())
    assert model.verify()
    model.calibrator_model.layers[0].bias[0] = float("inf")
    assert not model.verify()


# ---------------------------------------------------------------------------
# Guarded self-healing
# ---------------------------------------------------------------------------

class _DriftingPolicy(StaticPolicy):
    """Static policy whose drift signal reports a saturated gap."""

    def __init__(self, level=2, gap=1.0):
        super().__init__(level)
        self.gap = gap

    def drift_signal(self):
        return self.gap, False


class _StubRollback:
    """Duck-typed RollbackManager with a scripted recovery outcome."""

    def __init__(self, replacement):
        self.replacement = replacement
        self.calls = 0

    def recover(self):
        self.calls += 1
        return self.replacement

    def observability_counters(self):
        return {"rollback_attempts": self.calls}


def _drive(guard, simulator, epochs):
    for _ in range(epochs):
        if simulator.finished:
            break
        record = simulator.step_epoch()
        if record.all_finished:
            break
        decision = guard.decide(record)
        simulator.apply_decision(decision)


def test_drift_alarm_hot_swaps_inner_policy(small_arch):
    replacement = StaticPolicy(1)
    rollback = _StubRollback(replacement)
    guard = GuardedController(
        _DriftingPolicy(), drift_monitor=DriftMonitor(
            DriftConfig(warmup_updates=2)),
        rollback=rollback)
    simulator = GPUSimulator(small_arch, _kernel(), seed=0)
    guard.reset(simulator)
    _drive(guard, simulator, 20)
    assert guard.inner is replacement
    assert guard.state in (PROBATION, ACTIVE)
    counters = guard.observability_counters()
    assert counters["drift_trips"] == 1
    assert counters["rollback_hot_swaps"] == 1
    assert rollback.calls == 1


def test_drift_with_empty_registry_pins_fallback(small_arch):
    guard = GuardedController(
        _DriftingPolicy(), drift_monitor=DriftMonitor(
            DriftConfig(warmup_updates=2)),
        rollback=_StubRollback(None))
    simulator = GPUSimulator(small_arch, _kernel(), seed=0)
    guard.reset(simulator)
    fallback = [guard._fallback_level] * len(simulator.clusters)
    _drive(guard, simulator, 30)
    assert guard.state == FALLBACK
    assert guard._pinned_fallback
    counters = guard.observability_counters()
    assert counters["rollback_pinned_fallback"] == 1
    # Pinned means pinned: many more epochs never leave fallback.
    while not simulator.finished:
        record = simulator.step_epoch()
        if record.all_finished:
            break
        assert guard.decide(record) == fallback
    assert guard.state == FALLBACK


def test_drift_without_rollback_manager_pins_fallback(small_arch):
    guard = GuardedController(
        _DriftingPolicy(), drift_monitor=DriftMonitor(
            DriftConfig(warmup_updates=2)))
    simulator = GPUSimulator(small_arch, _kernel(), seed=0)
    guard.reset(simulator)
    _drive(guard, simulator, 20)
    assert guard._pinned_fallback


def test_strict_mode_raises_drift_detected(small_arch):
    guard = GuardedController(
        _DriftingPolicy(), strict=True,
        drift_monitor=DriftMonitor(DriftConfig(warmup_updates=2)))
    simulator = GPUSimulator(small_arch, _kernel(), seed=0)
    guard.reset(simulator)
    with pytest.raises(DriftDetected):
        _drive(guard, simulator, 30)


def test_reset_clears_drift_state(small_arch):
    monitor = DriftMonitor(DriftConfig(warmup_updates=2))
    guard = GuardedController(_DriftingPolicy(), drift_monitor=monitor,
                              rollback=_StubRollback(None))
    simulator = GPUSimulator(small_arch, _kernel(), seed=0)
    guard.reset(simulator)
    _drive(guard, simulator, 20)
    assert guard._pinned_fallback
    guard.reset(GPUSimulator(small_arch, _kernel(), seed=1))
    assert not guard._pinned_fallback
    assert guard.state == ACTIVE
    assert monitor.updates == 0


def test_healthy_policy_never_trips_drift(small_arch):
    guard = GuardedController(
        _DriftingPolicy(gap=0.02),
        drift_monitor=DriftMonitor(DriftConfig(warmup_updates=2)),
        rollback=_StubRollback(StaticPolicy(1)))
    simulator = GPUSimulator(small_arch, _kernel(), seed=0)
    guard.reset(simulator)
    _drive(guard, simulator, 60)
    assert guard.observability_counters().get("drift_trips", 0) == 0
    assert guard.state == ACTIVE


# ---------------------------------------------------------------------------
# Hot-swap cooldown (oscillation hysteresis)
# ---------------------------------------------------------------------------

class _OscillatingRollback:
    """Registry stub whose every recovery is itself a drifting pair.

    The pathological case the cooldown exists for: every swapped-in
    replacement re-alarms, so an unguarded swap loop would thrash
    through the registry forever.
    """

    def __init__(self):
        self.calls = 0

    def recover(self):
        self.calls += 1
        return _DriftingPolicy()

    def observability_counters(self):
        return {}


def test_swap_cooldown_suppresses_rollback_oscillation(small_arch):
    rollback = _OscillatingRollback()
    guard = GuardedController(
        _DriftingPolicy(),
        drift_monitor=DriftMonitor(DriftConfig(warmup_updates=2)),
        rollback=rollback, fallback_epochs=2, probation_epochs=2,
        swap_cooldown_epochs=500)
    simulator = GPUSimulator(small_arch, _kernel(iterations=120), seed=0)
    guard.reset(simulator)
    _drive(guard, simulator, 150)
    # Exactly one swap; every re-alarm inside the cooldown is suppressed
    # and ridden out in plain (unpinned) fallback instead.
    assert rollback.calls == 1
    counters = guard.observability_counters()
    assert counters["rollback_hot_swaps"] == 1
    assert counters["drift_swap_suppressed"] >= 1
    assert not guard._pinned_fallback


def test_swap_allowed_again_after_cooldown_elapses(small_arch):
    rollback = _OscillatingRollback()
    guard = GuardedController(
        _DriftingPolicy(),
        drift_monitor=DriftMonitor(DriftConfig(warmup_updates=2)),
        rollback=rollback, fallback_epochs=2, probation_epochs=2,
        swap_cooldown_epochs=10)
    simulator = GPUSimulator(small_arch, _kernel(iterations=120), seed=0)
    guard.reset(simulator)
    _drive(guard, simulator, 150)
    # A short cooldown only spaces swaps out; it must not pin the guard
    # into never swapping again.
    assert rollback.calls >= 2


def test_zero_cooldown_preserves_legacy_swap_behaviour(small_arch):
    rollback = _OscillatingRollback()
    guard = GuardedController(
        _DriftingPolicy(),
        drift_monitor=DriftMonitor(DriftConfig(warmup_updates=2)),
        rollback=rollback, fallback_epochs=2, probation_epochs=2,
        swap_cooldown_epochs=0)
    simulator = GPUSimulator(small_arch, _kernel(iterations=120), seed=0)
    guard.reset(simulator)
    _drive(guard, simulator, 150)
    assert rollback.calls >= 2
    assert "drift_swap_suppressed" not in guard.observability_counters()
