"""FLOPs accounting, pruning, quantization, serialization."""

import numpy as np
import pytest

from repro.errors import CompressionError, ModelError
from repro.nn.flops import combined_flops, layer_flops, macs, model_flops
from repro.nn.mlp import MLP
from repro.nn.prune import magnitude_prune, neuron_prune, prune_model
from repro.nn.quant import FixedPointFormat, choose_format, quantize_model
from repro.nn.serialize import (load_model, model_from_arrays,
                                model_to_arrays, save_model)


def _mlp(sizes=(6, 20, 20, 6), seed=0):
    return MLP(list(sizes), rng=np.random.default_rng(seed))


# --------------------------------------------------------------------------
# FLOPs
# --------------------------------------------------------------------------

def test_layer_flops_formula():
    model = _mlp((6, 20, 6))
    layer = model.layers[0]
    assert layer_flops(layer) == 2 * 6 * 20 + 2 * 20


def test_model_flops_sums_layers():
    model = _mlp((6, 20, 6))
    assert model_flops(model) == sum(layer_flops(l) for l in model.layers)


def test_paper_scale_base_architecture_flops():
    """The 5+4 x 20 base pair must land in the paper's ~7k FLOPs range."""
    decision = _mlp((6, 20, 20, 20, 20, 20, 6))
    calibrator = _mlp((7, 20, 20, 20, 20, 1))
    total = combined_flops([decision, calibrator])
    assert 6000 < total < 9000


def test_sparse_flops_drop_after_masking():
    model = _mlp()
    dense = model_flops(model, sparse=True)
    model.layers[0].mask[:, :10] = 0.0
    assert model_flops(model, sparse=True) < dense
    assert model_flops(model, sparse=False) == model_flops(model)


def test_macs_half_of_weight_flops():
    model = _mlp((6, 20, 6))
    assert macs(model) == 6 * 20 + 20 * 6


# --------------------------------------------------------------------------
# Pruning
# --------------------------------------------------------------------------

def test_magnitude_prune_fraction():
    model = _mlp()
    total = sum(l.weights.size for l in model.layers)
    pruned = magnitude_prune(model, 0.6)
    assert pruned == pytest.approx(0.6 * total, rel=0.05)
    assert model.sparsity == pytest.approx(0.6, abs=0.05)


def test_magnitude_prune_removes_smallest():
    model = _mlp((4, 4, 2))
    flat_before = np.abs(model.all_weights())
    flat_before = flat_before[flat_before > 0]
    magnitude_prune(model, 0.5)
    surviving = np.abs(model.all_weights())
    surviving = surviving[surviving > 0]
    assert surviving.min() >= np.quantile(flat_before, 0.5) - 1e-12


def test_magnitude_prune_zero_fraction_noop():
    model = _mlp()
    assert magnitude_prune(model, 0.0) == 0
    assert model.sparsity == 0.0


def test_magnitude_prune_validation():
    with pytest.raises(CompressionError):
        magnitude_prune(_mlp(), 1.0)
    with pytest.raises(CompressionError):
        magnitude_prune(_mlp(), -0.1)


def test_neuron_prune_removes_mostly_zero_neurons():
    model = _mlp((6, 20, 20, 6))
    # Fully mask the incoming weights of neurons 0-4 of the first layer.
    model.layers[0].mask[:, :5] = 0.0
    model.layers[0].apply_mask()
    removed = neuron_prune(model, 0.9)
    assert removed == 5
    assert model.layer_sizes == [6, 15, 20, 6]


def test_neuron_prune_keeps_at_least_one():
    model = _mlp((6, 4, 6))
    model.layers[0].mask[:] = 0.0
    model.layers[0].apply_mask()
    neuron_prune(model, 0.5)
    assert model.layer_sizes[1] >= 1


def test_neuron_prune_validation():
    with pytest.raises(CompressionError):
        neuron_prune(_mlp(), 0.0)
    with pytest.raises(CompressionError):
        neuron_prune(_mlp(), 1.5)


def test_prune_model_report():
    model = _mlp()
    report = prune_model(model, 0.6, 0.9)
    assert report.weights_pruned > 0
    assert report.sparse_flops < report.dense_flops
    assert report.sparsity > 0.4
    assert report.layer_sizes == model.layer_sizes


def test_pruned_model_still_runs():
    model = _mlp()
    prune_model(model, 0.7, 0.8)
    out = model.forward(np.ones((3, 6)))
    assert out.shape[0] == 3
    assert np.isfinite(out).all()


# --------------------------------------------------------------------------
# Quantization
# --------------------------------------------------------------------------

def test_fixed_point_format_bounds():
    fmt = FixedPointFormat(8, 4)
    assert fmt.scale == pytest.approx(1 / 16)
    assert fmt.max_value == pytest.approx(127 / 16)
    assert fmt.quantize(np.array([100.0]))[0] == pytest.approx(fmt.max_value)
    assert fmt.quantize(np.array([-100.0]))[0] == pytest.approx(fmt.min_value)


def test_fixed_point_validation():
    with pytest.raises(ModelError):
        FixedPointFormat(1, 0)
    with pytest.raises(ModelError):
        FixedPointFormat(8, 8)


def test_choose_format_covers_range():
    values = np.array([-3.7, 2.9])
    fmt = choose_format(values, 16)
    assert fmt.max_value >= 3.7
    assert fmt.quantize(values)[0] == pytest.approx(-3.7, abs=fmt.scale)


def test_quantize_model_error_shrinks_with_bits():
    model = _mlp()
    _, report8 = quantize_model(model, total_bits=8)
    _, report16 = quantize_model(model, total_bits=16)
    assert report16.max_weight_error < report8.max_weight_error


def test_quantized_model_output_close():
    model = _mlp()
    x = np.random.default_rng(1).normal(size=(10, 6))
    quantized, _ = quantize_model(model, total_bits=16)
    assert np.allclose(model.forward(x), quantized.forward(x), atol=1e-2)


def test_quantize_preserves_masks():
    model = _mlp()
    magnitude_prune(model, 0.5)
    quantized, _ = quantize_model(model, total_bits=8)
    assert quantized.sparsity == pytest.approx(model.sparsity)


# --------------------------------------------------------------------------
# Serialization
# --------------------------------------------------------------------------

def test_round_trip_through_arrays():
    model = _mlp()
    prune_model(model, 0.3, 0.95)
    restored = model_from_arrays(model_to_arrays(model))
    x = np.random.default_rng(2).normal(size=(5, 6))
    assert np.allclose(model.forward(x), restored.forward(x))
    assert restored.layer_sizes == model.layer_sizes


def test_round_trip_through_file(tmp_path):
    model = _mlp()
    path = tmp_path / "model.npz"
    save_model(model, path)
    restored = load_model(path)
    x = np.random.default_rng(3).normal(size=(4, 6))
    assert np.allclose(model.forward(x), restored.forward(x))


def test_load_missing_file_rejected(tmp_path):
    with pytest.raises(ModelError):
        load_model(tmp_path / "nope.npz")


def test_malformed_arrays_rejected():
    with pytest.raises(ModelError):
        model_from_arrays({})
    arrays = model_to_arrays(_mlp((3, 4, 2)))
    del arrays["w1"]
    with pytest.raises(ModelError):
        model_from_arrays(arrays)
