"""Property-based tests: interval-model invariants over random phases."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.arch import titan_x_config
from repro.gpu.interval_model import solve_throughput
from repro.gpu.phases import Phase, make_mix

ARCH = titan_x_config()
F_LEVELS = ARCH.vf_table.frequencies_hz()


@st.composite
def phases(draw):
    """Arbitrary valid phases spanning the physical parameter space."""
    load = draw(st.floats(0.0, 0.35))
    store = draw(st.floats(0.0, 0.12))
    branch = draw(st.floats(0.0, 0.25))
    fp32 = draw(st.floats(0.0, max(0.0, 0.95 - load - store - branch)))
    mix = make_mix(fp32=fp32, load=load, store=store, branch=branch)
    return Phase(
        name="prop",
        instructions=draw(st.integers(1_000, 1_000_000)),
        mix=mix,
        cpi_exec=draw(st.floats(1.0, 6.0)),
        mlp=draw(st.floats(1.0, 8.0)),
        l1_miss_rate=draw(st.floats(0.0, 1.0)),
        l2_miss_rate=draw(st.floats(0.0, 1.0)),
        active_warps=draw(st.floats(1.0, 64.0)),
        divergence=draw(st.floats(0.0, 1.0)),
    )


@given(phases(), st.sampled_from(F_LEVELS))
@settings(max_examples=150, deadline=None)
def test_ipc_is_positive_and_bounded(phase, frequency):
    solution = solve_throughput(ARCH, phase, frequency)
    assert 0.0 < solution.ipc <= ARCH.issue_width + 1e-9


@given(phases())
@settings(max_examples=100, deadline=None)
def test_time_never_improves_at_lower_frequency(phase):
    """Wall-clock time for fixed work is non-increasing in frequency."""
    times = []
    for frequency in F_LEVELS:
        solution = solve_throughput(ARCH, phase, frequency)
        times.append(solution.time_for_instructions(10_000.0))
    for slower, faster in zip(times, times[1:]):
        assert faster <= slower * (1.0 + 1e-9)


@given(phases())
@settings(max_examples=100, deadline=None)
def test_slowdown_bounded_by_frequency_ratio(phase):
    """Physics bound: slowdown between two V/f points never exceeds the
    clock ratio (memory latency only *hides* cycles at low f)."""
    hi, lo = F_LEVELS[-1], F_LEVELS[0]
    t_hi = solve_throughput(ARCH, phase, hi).time_for_instructions(10_000.0)
    t_lo = solve_throughput(ARCH, phase, lo).time_for_instructions(10_000.0)
    slowdown = t_lo / t_hi
    assert 1.0 - 1e-9 <= slowdown <= hi / lo + 1e-9


@given(phases(), st.sampled_from(F_LEVELS))
@settings(max_examples=150, deadline=None)
def test_stall_slot_accounting_identity(phase, frequency):
    """issued + stalls == issue budget, always."""
    solution = solve_throughput(ARCH, phase, frequency)
    budget = ARCH.issue_width * solution.cycles_per_instruction
    assert abs(1.0 + solution.total_stall_slots - budget) < 1e-6


@given(phases(), st.sampled_from(F_LEVELS))
@settings(max_examples=100, deadline=None)
def test_stall_components_nonnegative(phase, frequency):
    solution = solve_throughput(ARCH, phase, frequency)
    assert solution.stall_mem_load >= 0
    assert solution.stall_mem_other >= 0
    assert solution.stall_control >= 0
    assert solution.stall_sync >= 0
    assert solution.stall_data >= 0
    assert solution.stall_idle >= -1e-12


@given(phases(), st.sampled_from(F_LEVELS), st.floats(1.1, 2.0))
@settings(max_examples=100, deadline=None)
def test_more_warps_never_hurts(phase, frequency, factor):
    base = solve_throughput(ARCH, phase, frequency)
    boosted = solve_throughput(ARCH, phase, frequency,
                               warp_multiplier=factor)
    assert boosted.ipc >= base.ipc * (1.0 - 1e-9)


@given(phases(), st.sampled_from(F_LEVELS))
@settings(max_examples=100, deadline=None)
def test_bandwidth_utilization_bounded(phase, frequency):
    solution = solve_throughput(ARCH, phase, frequency)
    assert 0.0 <= solution.bandwidth_utilization <= 1.0 + 1e-9


@given(phases(), st.sampled_from(F_LEVELS),
       st.floats(1.0, 100_000.0))
@settings(max_examples=100, deadline=None)
def test_time_instruction_round_trip(phase, frequency, instructions):
    import pytest
    solution = solve_throughput(ARCH, phase, frequency)
    elapsed = solution.time_for_instructions(instructions)
    assert solution.instructions_in_time(elapsed) == pytest.approx(
        instructions, rel=1e-9)
