"""Event-driven controller and phase-change detector."""

import numpy as np
import pytest

from repro.errors import PolicyError
from repro.gpu.kernels import KernelProfile
from repro.gpu.phases import compute_phase, memory_phase
from repro.gpu.simulator import GPUSimulator
from repro.core.controller import SSMDVFSController
from repro.core.event_driven import EventDrivenController, PhaseChangeDetector
from repro.core.policy import StaticPolicy


def _stationary_kernel(iterations=14):
    return KernelProfile(
        "ed.stationary",
        [memory_phase("m", 150_000, warps=48, l1_miss=0.9, l2_miss=0.9)],
        iterations=iterations, jitter=0.03)


def _swinging_kernel(iterations=7):
    return KernelProfile(
        "ed.swing",
        [compute_phase("c", 150_000, warps=16),
         memory_phase("m", 150_000, warps=48, l1_miss=0.9, l2_miss=0.9)],
        iterations=iterations, jitter=0.05)


# ---------------------------------------------------------------------------
# Detector
# ---------------------------------------------------------------------------

def test_detector_validation():
    with pytest.raises(PolicyError):
        PhaseChangeDetector(threshold=0.0)


def test_detector_fires_when_unarmed():
    detector = PhaseChangeDetector()
    assert detector.changed(np.array([1.0, 2.0]))


def test_detector_holds_within_threshold():
    detector = PhaseChangeDetector(threshold=0.2)
    detector.rearm(np.array([10.0, 5.0]))
    assert not detector.changed(np.array([11.0, 5.2]))  # ~10 % drift
    assert detector.changed(np.array([14.0, 5.0]))      # 40 % drift


def test_detector_reset_forgets_reference():
    detector = PhaseChangeDetector()
    detector.rearm(np.array([1.0]))
    detector.reset()
    assert detector.changed(np.array([1.0]))


def test_detector_relative_scaling():
    """Drift is relative: the same absolute change matters more on a
    small feature than a large one."""
    detector = PhaseChangeDetector(threshold=0.5)
    detector.rearm(np.array([100.0, 0.1]))
    assert not detector.changed(np.array([101.0, 0.1]))
    assert detector.changed(np.array([100.0, 0.2]))


# ---------------------------------------------------------------------------
# Controller
# ---------------------------------------------------------------------------

def test_event_controller_validation(small_pipeline):
    with pytest.raises(PolicyError):
        EventDrivenController(small_pipeline.model("base"), 0.10,
                              refresh_epochs=0)


def test_skips_inferences_on_stationary_phase(small_pipeline, small_arch):
    controller = EventDrivenController(small_pipeline.model("base"), 0.10,
                                       refresh_epochs=10)
    simulator = GPUSimulator(small_arch, _stationary_kernel(), seed=3)
    simulator.run(controller, keep_records=False)
    assert controller.hold_count > 0
    assert controller.inference_savings > 0.3


def test_refresh_bounds_hold_streaks(small_pipeline, small_arch):
    controller = EventDrivenController(small_pipeline.model("base"), 0.10,
                                       refresh_epochs=4)
    simulator = GPUSimulator(small_arch, _stationary_kernel(), seed=3)
    result = simulator.run(controller, keep_records=False)
    # With refresh every 4 epochs, at least ~1/4 of epochs must infer.
    total = controller.inference_count + controller.hold_count
    assert controller.inference_count >= total // 4 - 1
    assert result.time_s > 0


def test_event_driven_matches_full_controller_quality(small_pipeline,
                                                      small_arch):
    """Skipping inferences inside stationary phases must not cost more
    than a small EDP/latency margin versus inferring every epoch."""
    model = small_pipeline.model("base")
    kernel = _swinging_kernel()
    base = GPUSimulator(small_arch, kernel, seed=5).run(
        StaticPolicy(small_arch.vf_table.default_level), keep_records=False)
    full = GPUSimulator(small_arch, kernel, seed=5).run(
        SSMDVFSController(model, 0.10), keep_records=False)
    event_controller = EventDrivenController(model, 0.10)
    event = GPUSimulator(small_arch, kernel, seed=5).run(
        event_controller, keep_records=False)
    assert event.edp / base.edp < full.edp / base.edp + 0.05
    assert event.time_s / base.time_s < full.time_s / base.time_s + 0.05


def test_event_driven_reacts_to_phase_changes(small_pipeline, small_arch):
    """On a swinging kernel the detector must trigger inferences well
    beyond the refresh floor."""
    controller = EventDrivenController(small_pipeline.model("base"), 0.10,
                                       refresh_epochs=50)
    simulator = GPUSimulator(small_arch, _swinging_kernel(), seed=6)
    simulator.run(controller, keep_records=False)
    total = controller.inference_count + controller.hold_count
    refresh_floor = total // 50 + 1
    assert controller.inference_count > refresh_floor * 2


def test_name_encodes_event_mode(small_pipeline):
    controller = EventDrivenController(small_pipeline.model("base"), 0.15)
    assert controller.name == "ssmdvfs-event-p15"
