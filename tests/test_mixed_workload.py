"""Heterogeneous (multi-tenant) simulation and per-cluster control."""

import pytest

from repro.errors import SimulationError
from repro.gpu.kernels import KernelProfile
from repro.gpu.phases import compute_phase, memory_phase
from repro.gpu.simulator import GPUSimulator
from repro.core.controller import SSMDVFSController
from repro.core.policy import StaticPolicy


def _mem_kernel(iterations=10):
    return KernelProfile(
        "mx.memory",
        [memory_phase("m", 120_000, warps=48, l1_miss=0.9, l2_miss=0.9)],
        iterations=iterations, jitter=0.05)


def _cmp_kernel(iterations=10):
    return KernelProfile(
        "mx.compute", [compute_phase("c", 120_000, warps=16)],
        iterations=iterations, jitter=0.05)


def test_empty_kernel_list_rejected(small_arch):
    with pytest.raises(SimulationError):
        GPUSimulator(small_arch, [])


def test_round_robin_assignment(small_arch):
    simulator = GPUSimulator(small_arch, [_mem_kernel(), _cmp_kernel()],
                             seed=1)
    assert simulator.clusters[0].cursor.kernel.name == "mx.memory"
    assert simulator.clusters[1].cursor.kernel.name == "mx.compute"
    assert simulator.workload_name == "mx.memory+mx.compute"


def test_single_kernel_name_unchanged(small_arch):
    simulator = GPUSimulator(small_arch, _mem_kernel(), seed=1)
    assert simulator.workload_name == "mx.memory"


def test_mixed_run_completes_both_tenants(small_arch):
    simulator = GPUSimulator(small_arch, [_mem_kernel(4), _cmp_kernel(4)],
                             seed=2)
    result = simulator.run(StaticPolicy(5), keep_records=False)
    assert simulator.finished
    assert result.kernel_name == "mx.memory+mx.compute"


def test_mixed_snapshot_round_trip(small_arch):
    simulator = GPUSimulator(small_arch, [_mem_kernel(), _cmp_kernel()],
                             seed=3)
    simulator.step_epoch()
    snapshot = simulator.snapshot()
    first = simulator.step_epoch().instructions
    simulator.restore(snapshot)
    second = simulator.step_epoch().instructions
    assert first == pytest.approx(second)


def test_controller_differentiates_tenants(small_pipeline, small_arch):
    """The point of per-cluster DVFS: with a memory tenant on cluster 0
    and a compute tenant on cluster 1, the controller should settle the
    memory cluster *below* the compute cluster."""
    model = small_pipeline.model("base")
    simulator = GPUSimulator(small_arch, [_mem_kernel(), _cmp_kernel()],
                             seed=4)
    result = simulator.run(SSMDVFSController(model, preset=0.10),
                           keep_records=True)
    # Average levels per cluster over the steady part of the run.
    steady = result.records[2:-2] or result.records
    mem_mean = sum(r.levels[0] for r in steady) / len(steady)
    cmp_mean = sum(r.levels[1] for r in steady) / len(steady)
    assert mem_mean < cmp_mean - 0.5


def test_mixed_beats_any_single_static_on_edp(small_pipeline, small_arch):
    """No chip-wide static level can serve both tenants: low starves the
    compute tenant (delay), high wastes the memory tenant (energy).
    Per-cluster SSMDVFS must beat the best chip-wide static on EDP
    while keeping latency near the preset.

    Tenant lengths are balanced (the compute kernel runs ~4x more
    iterations) so neither tenant hides the other's completion.
    """
    kernels = [_mem_kernel(8), _cmp_kernel(30)]
    static_edps = {}
    base_time = None
    for level in range(6):
        simulator = GPUSimulator(small_arch, kernels, seed=5)
        run = simulator.run(StaticPolicy(level), keep_records=False)
        static_edps[level] = run.edp
        if level == 5:
            base_time = run.time_s
    model = small_pipeline.model("base")
    simulator = GPUSimulator(small_arch, kernels, seed=5)
    controlled = simulator.run(SSMDVFSController(model, preset=0.10),
                               keep_records=False)
    assert controlled.edp < min(static_edps.values()) * 1.02
    assert controlled.time_s < base_time * 1.15
