"""Recursive feature elimination (Table I machinery)."""

import pytest

from repro.errors import DatasetError
from repro.datagen.rfe import RFESelector
from repro.gpu.counters import paper_category
from repro.nn.trainer import TrainConfig


@pytest.fixture(scope="module")
def rfe_result(small_dataset, small_arch):
    candidates = (
        "ipc", "inst_total", "frac_mem", "frac_branch", "occupancy",
        "stall_mem_hazard", "stall_mem_hazard_nonload", "stall_control",
        "l1_read_miss", "l1_read_miss_rate", "avg_mem_latency",
        "bandwidth_utilization",
    )
    selector = RFESelector(
        small_dataset, small_arch.issue_width, candidates=candidates,
        target_count=3, seed=5,
        train_config=TrainConfig(epochs=25, patience=6, learning_rate=3e-3,
                                 seed=5))
    return selector.run()


def test_selects_target_count(rfe_result):
    assert len(rfe_result.selected) == 3


def test_always_keep_present(rfe_result):
    assert "power_per_core" in rfe_result.all_features
    assert len(rfe_result.all_features) == 4


def test_rounds_shrink_monotonically(rfe_result):
    sizes = [len(r.features) for r in rfe_result.rounds]
    assert sizes == sorted(sizes, reverse=True)
    assert sizes[-1] == 3


def test_eliminated_features_were_least_important(rfe_result):
    for round_ in rfe_result.rounds[:-1]:
        if not round_.eliminated:
            continue
        kept = [n for n in round_.features if n not in round_.eliminated]
        worst_kept = min(round_.importances[n] for n in kept)
        best_dropped = max(round_.importances[n] for n in round_.eliminated)
        assert best_dropped <= worst_kept + 1e-12


def test_accuracy_survives_refinement(rfe_result):
    """Paper: only a 0.48 pp accuracy drop after RFE; allow slack here."""
    assert rfe_result.selected_accuracy >= rfe_result.full_accuracy - 0.10


def test_selected_features_cover_informative_categories(rfe_result):
    """The selection must include stall/instruction signal, not noise."""
    categories = {paper_category(n) for n in rfe_result.selected}
    assert "stall" in categories or "instruction" in categories


def test_validation():
    class Dummy:
        pass

    with pytest.raises(DatasetError):
        # Fewer candidates than targets.
        RFESelector(Dummy(), 4.0, candidates=("ipc",), target_count=2)
    with pytest.raises(DatasetError):
        # Candidate overlaps the always-keep set.
        RFESelector(Dummy(), 4.0, candidates=("ipc", "power_per_core"),
                    target_count=1)
    with pytest.raises(DatasetError):
        # Zero targets.
        RFESelector(Dummy(), 4.0, candidates=("ipc", "frac_mem"),
                    target_count=0)
    with pytest.raises(DatasetError):
        # Bad drop fraction.
        RFESelector(Dummy(), 4.0, candidates=("ipc", "frac_mem"),
                    target_count=1, drop_fraction=1.0)
