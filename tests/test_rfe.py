"""Recursive feature elimination (Table I machinery)."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.datagen.rfe import (ImportanceWorkspace, RFESelector,
                               _permutation_importance,
                               permutation_importances)
from repro.gpu.counters import paper_category
from repro.nn.mlp import MLP
from repro.nn.metrics import accuracy
from repro.nn.trainer import TrainConfig
from repro.parallel import CampaignStats


@pytest.fixture(scope="module")
def rfe_result(small_dataset, small_arch):
    candidates = (
        "ipc", "inst_total", "frac_mem", "frac_branch", "occupancy",
        "stall_mem_hazard", "stall_mem_hazard_nonload", "stall_control",
        "l1_read_miss", "l1_read_miss_rate", "avg_mem_latency",
        "bandwidth_utilization",
    )
    selector = RFESelector(
        small_dataset, small_arch.issue_width, candidates=candidates,
        target_count=3, seed=5,
        train_config=TrainConfig(epochs=25, patience=6, learning_rate=3e-3,
                                 seed=5))
    return selector.run()


def test_selects_target_count(rfe_result):
    assert len(rfe_result.selected) == 3


def test_always_keep_present(rfe_result):
    assert "power_per_core" in rfe_result.all_features
    assert len(rfe_result.all_features) == 4


def test_rounds_shrink_monotonically(rfe_result):
    sizes = [len(r.features) for r in rfe_result.rounds]
    assert sizes == sorted(sizes, reverse=True)
    assert sizes[-1] == 3


def test_eliminated_features_were_least_important(rfe_result):
    for round_ in rfe_result.rounds[:-1]:
        if not round_.eliminated:
            continue
        kept = [n for n in round_.features if n not in round_.eliminated]
        worst_kept = min(round_.importances[n] for n in kept)
        best_dropped = max(round_.importances[n] for n in round_.eliminated)
        assert best_dropped <= worst_kept + 1e-12


def test_accuracy_survives_refinement(rfe_result):
    """Paper: only a 0.48 pp accuracy drop after RFE; allow slack here."""
    assert rfe_result.selected_accuracy >= rfe_result.full_accuracy - 0.10


def test_selected_features_cover_informative_categories(rfe_result):
    """The selection must include stall/instruction signal, not noise."""
    categories = {paper_category(n) for n in rfe_result.selected}
    assert "stall" in categories or "instruction" in categories


def test_validation():
    class Dummy:
        pass

    with pytest.raises(DatasetError):
        # Fewer candidates than targets.
        RFESelector(Dummy(), 4.0, candidates=("ipc",), target_count=2)
    with pytest.raises(DatasetError):
        # Candidate overlaps the always-keep set.
        RFESelector(Dummy(), 4.0, candidates=("ipc", "power_per_core"),
                    target_count=1)
    with pytest.raises(DatasetError):
        # Zero targets.
        RFESelector(Dummy(), 4.0, candidates=("ipc", "frac_mem"),
                    target_count=0)
    with pytest.raises(DatasetError):
        # Bad drop fraction.
        RFESelector(Dummy(), 4.0, candidates=("ipc", "frac_mem"),
                    target_count=1, drop_fraction=1.0)


# ---------------------------------------------------------------------------
# Batched importance scoring vs the serial loop
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def scoring_setup():
    rng = np.random.default_rng(0)
    rows, width, classes = 64, 13, 6
    x = rng.normal(size=(rows, width))
    y = rng.integers(0, classes, size=rows)
    model = MLP([width, 20, 20, classes], rng=np.random.default_rng(1))
    return model, x, y


def test_batched_importances_match_serial(scoring_setup):
    model, x, y = scoring_setup
    columns = list(range(1, 13))
    serial_rng = np.random.default_rng(9)
    serial = np.array([
        _permutation_importance(model, x, y, column, serial_rng)
        for column in columns
    ])
    batched = permutation_importances(model, x, y, columns,
                                      np.random.default_rng(9))
    np.testing.assert_array_equal(batched, serial)


def test_batched_consumes_identical_rng_stream(scoring_setup):
    """Both paths must leave the generator in the same state, so mixed
    batched/serial rounds stay on one reproducible stream."""
    model, x, y = scoring_setup
    columns = list(range(1, 13))
    serial_rng = np.random.default_rng(9)
    for column in columns:
        _permutation_importance(model, x, y, column, serial_rng)
    batched_rng = np.random.default_rng(9)
    permutation_importances(model, x, y, columns, batched_rng)
    assert np.array_equal(serial_rng.integers(0, 1 << 30, 16),
                          batched_rng.integers(0, 1 << 30, 16))


def test_batched_importances_reuse_workspace(scoring_setup):
    model, x, y = scoring_setup
    columns = list(range(1, 13))
    workspace = ImportanceWorkspace()
    first = permutation_importances(model, x, y, columns,
                                    np.random.default_rng(9),
                                    workspace=workspace)
    second = permutation_importances(model, x, y, columns,
                                     np.random.default_rng(9),
                                     workspace=workspace)
    np.testing.assert_array_equal(first, second)


def test_batched_importances_chunking_invariant(scoring_setup):
    """Splitting the stack into chunks must not change any score."""
    model, x, y = scoring_setup
    columns = list(range(1, 13))
    full = permutation_importances(model, x, y, columns,
                                   np.random.default_rng(9))
    chunked = permutation_importances(model, x, y, columns,
                                      np.random.default_rng(9),
                                      row_budget=x.shape[0] * 2)
    np.testing.assert_array_equal(full, chunked)


def test_batched_importances_validation(scoring_setup):
    model, x, y = scoring_setup
    rng = np.random.default_rng(0)
    with pytest.raises(DatasetError):
        permutation_importances(model, x, y, [], rng)
    with pytest.raises(DatasetError):
        permutation_importances(model, x, y, [x.shape[1]], rng)
    with pytest.raises(DatasetError):
        permutation_importances(model, x[:, 0], y, [0], rng)


def test_serial_base_argument_matches_recompute(scoring_setup):
    model, x, y = scoring_setup
    base = accuracy(model.predict_class(x), y)
    with_base = _permutation_importance(model, x, y, 2,
                                        np.random.default_rng(4), base=base)
    without = _permutation_importance(model, x, y, 2,
                                      np.random.default_rng(4))
    assert with_base == without


def test_selector_batched_and_serial_agree(small_dataset, small_arch):
    """End to end: both scoring paths pick the same features with the
    same importances, and the counters land in stats."""
    candidates = ("ipc", "inst_total", "frac_mem", "occupancy",
                  "stall_control", "l1_read_miss")
    config = TrainConfig(epochs=12, patience=4, learning_rate=3e-3, seed=5)

    def run(batched):
        stats = CampaignStats()
        result = RFESelector(
            small_dataset, small_arch.issue_width, candidates=candidates,
            target_count=3, seed=5, train_config=config,
            batched=batched, stats=stats).run()
        return result, stats

    batched_result, batched_stats = run(True)
    serial_result, serial_stats = run(False)
    assert batched_result.selected == serial_result.selected
    assert len(batched_result.rounds) == len(serial_result.rounds)
    for b_round, s_round in zip(batched_result.rounds, serial_result.rounds):
        assert b_round.eliminated == s_round.eliminated
        assert b_round.importances.keys() == s_round.importances.keys()
        for name, value in b_round.importances.items():
            assert value == pytest.approx(s_round.importances[name],
                                          abs=1e-12)
    for stats in (batched_stats, serial_stats):
        assert stats.counter("rfe_rounds") == len(batched_result.rounds)
        assert stats.counter("train_models") == len(batched_result.rounds)
        assert stats.counter("train_epochs") > 0
        assert stats.counter("rfe_columns_scored") == sum(
            len(r.features) for r in batched_result.rounds)
