"""Benchmark-suite surrogate."""

import pytest

from repro.errors import WorkloadError
from repro.gpu.arch import titan_x_config
from repro.workloads.suites import (EVALUATION_KERNEL_NAMES,
                                    TRAINING_KERNEL_NAMES,
                                    estimate_default_duration,
                                    evaluation_suite, full_suite,
                                    kernel_by_name, scale_kernel_to_duration,
                                    training_suite, unseen_fraction)

ARCH = titan_x_config()


def test_full_suite_has_more_than_20_benchmarks():
    """Paper §III-A: 'over 20 benchmarks'."""
    assert len(full_suite()) > 20


def test_suites_cover_three_origins():
    suites = {k.suite for k in full_suite()}
    assert suites == {"rodinia", "parboil", "polybench"}


def test_kernel_names_unique():
    names = [k.name for k in full_suite()]
    assert len(set(names)) == len(names)


def test_training_and_eval_names_exist():
    for name in TRAINING_KERNEL_NAMES + EVALUATION_KERNEL_NAMES:
        kernel_by_name(name)  # raises if missing


def test_unknown_kernel_rejected():
    with pytest.raises(WorkloadError):
        kernel_by_name("rodinia.nonexistent")


def test_majority_of_eval_kernels_unseen():
    """Paper §V.A: > 50 % of eval programs not in the training set."""
    assert unseen_fraction() > 0.5


def test_training_suite_size():
    assert len(training_suite()) == len(TRAINING_KERNEL_NAMES) >= 12


def test_all_kernels_have_valid_durations():
    for kernel in full_suite():
        duration = estimate_default_duration(kernel, ARCH)
        assert 20e-6 < duration < 5e-3, kernel.name


def test_scale_kernel_to_duration():
    kernel = kernel_by_name("rodinia.pathfinder")
    scaled = scale_kernel_to_duration(kernel, ARCH, 300e-6)
    duration = estimate_default_duration(scaled, ARCH)
    one_iter = estimate_default_duration(kernel.with_iterations(1), ARCH)
    assert abs(duration - 300e-6) <= one_iter  # within one iteration


def test_scale_rejects_bad_duration():
    with pytest.raises(WorkloadError):
        scale_kernel_to_duration(kernel_by_name("rodinia.bfs"), ARCH, 0.0)


def test_suite_diversity_compute_vs_memory():
    """The suite must span compute-bound and memory-bound kernels."""
    from repro.gpu.interval_model import frequency_sensitivity
    f_hi = ARCH.vf_table[5].frequency_hz
    f_lo = ARCH.vf_table[0].frequency_hz
    sensitivities = []
    for kernel in full_suite():
        phase = kernel.phases[0]
        sensitivities.append(frequency_sensitivity(ARCH, phase, f_hi, f_lo))
    assert min(sensitivities) < 1.1    # some memory-bound
    assert max(sensitivities) > 1.5    # some compute-bound


def test_eval_suite_returns_profiles():
    suite = evaluation_suite()
    assert len(suite) == len(EVALUATION_KERNEL_NAMES)
