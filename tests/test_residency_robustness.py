"""Residency analysis, seed sweeps, counter-noise wrapper, quantization."""

import pytest

from repro.errors import PolicyError, SimulationError
from repro.gpu.kernels import KernelProfile
from repro.gpu.phases import compute_phase, memory_phase
from repro.gpu.simulator import GPUSimulator
from repro.evaluation.residency import (ResidencyProfile,
                                        residency_from_records)
from repro.evaluation.robustness import (NoisyCountersPolicy, seed_sweep)
from repro.core.policy import StaticPolicy


def _kernel(kind="memory", iterations=10):
    phase = (memory_phase("m", 120_000, warps=48, l1_miss=0.9, l2_miss=0.9)
             if kind == "memory" else compute_phase("c", 120_000, warps=16))
    return KernelProfile(f"rr.{kind}", [phase], iterations=iterations,
                         jitter=0.05)


# ---------------------------------------------------------------------------
# Residency
# ---------------------------------------------------------------------------

def test_static_policy_residency_is_pinned(small_arch):
    simulator = GPUSimulator(small_arch, _kernel(), seed=1)
    result = simulator.run(StaticPolicy(2), keep_records=True)
    profile = residency_from_records(result.records, 6)
    assert profile.dominant_level == 2
    assert profile.fractions[2] == pytest.approx(1.0)
    assert profile.entropy_bits() == pytest.approx(0.0)
    assert profile.mean_level == pytest.approx(2.0)


def test_residency_profile_validation():
    with pytest.raises(SimulationError):
        residency_from_records([], 6)
    with pytest.raises(SimulationError):
        ResidencyProfile(fractions=(0.5, 0.2))  # does not sum to 1


def test_residency_entropy_of_uniform():
    profile = ResidencyProfile(fractions=(0.25,) * 4)
    assert profile.entropy_bits() == pytest.approx(2.0)


def test_residency_render():
    profile = ResidencyProfile(fractions=(1.0, 0.0))
    assert "L0" in profile.render()


def test_ssmdvfs_residency_low_on_memory_kernel(small_pipeline, small_arch):
    from repro.core.controller import SSMDVFSController
    simulator = GPUSimulator(small_arch, _kernel("memory"), seed=2)
    result = simulator.run(
        SSMDVFSController(small_pipeline.model("base"), 0.10),
        keep_records=True)
    profile = residency_from_records(result.records, 6)
    assert profile.mean_level < 4.0  # spends real time below default


# ---------------------------------------------------------------------------
# Counter-noise wrapper
# ---------------------------------------------------------------------------

def test_noise_wrapper_validation(small_pipeline):
    from repro.core.controller import SSMDVFSController
    controller = SSMDVFSController(small_pipeline.model("base"), 0.10)
    with pytest.raises(PolicyError):
        NoisyCountersPolicy(controller, sigma=-0.1)


def test_zero_noise_is_transparent(small_pipeline, small_arch):
    from repro.core.controller import SSMDVFSController
    model = small_pipeline.model("base")
    kernel = _kernel("memory")
    plain = GPUSimulator(small_arch, kernel, seed=3).run(
        SSMDVFSController(model, 0.10), keep_records=False)
    wrapped = GPUSimulator(small_arch, kernel, seed=3).run(
        NoisyCountersPolicy(SSMDVFSController(model, 0.10), sigma=0.0),
        keep_records=False)
    assert wrapped.energy_j == pytest.approx(plain.energy_j)
    assert wrapped.time_s == pytest.approx(plain.time_s)


def test_noise_degrades_gracefully(small_pipeline, small_arch):
    """Moderate counter noise must not break the controller: the run
    completes and latency stays bounded."""
    from repro.core.controller import SSMDVFSController
    model = small_pipeline.model("base")
    kernel = _kernel("compute")
    base = GPUSimulator(small_arch, kernel, seed=4).run(
        StaticPolicy(small_arch.vf_table.default_level), keep_records=False)
    noisy = GPUSimulator(small_arch, kernel, seed=4).run(
        NoisyCountersPolicy(SSMDVFSController(model, 0.10), sigma=0.10,
                            seed=4),
        keep_records=False)
    assert noisy.time_s / base.time_s < 1.35


def test_noise_wrapper_name():
    class Stub:
        name = "stub"

        def reset(self, simulator):
            pass

        def decide(self, record):
            return 0

    assert NoisyCountersPolicy(Stub(), 0.05).name == "stub+noise0.05"


# ---------------------------------------------------------------------------
# Seed sweep
# ---------------------------------------------------------------------------

def test_seed_sweep_aggregates(small_arch):
    factories = {"min": lambda: StaticPolicy(0)}
    result = seed_sweep(factories, [_kernel("memory", iterations=6)],
                        small_arch, preset=0.10, seeds=[1, 2, 3])
    assert set(result.mean_edp) == {"baseline", "min"}
    assert result.std_edp["baseline"] == pytest.approx(0.0)
    assert result.std_edp["min"] >= 0.0
    assert len(result.comparisons) == 3
    assert "Seed sweep" in result.render()


def test_seed_sweep_needs_seeds(small_arch):
    with pytest.raises(SimulationError):
        seed_sweep({}, [_kernel()], small_arch, 0.1, seeds=[])


# ---------------------------------------------------------------------------
# Quantized model artefact
# ---------------------------------------------------------------------------

def test_quantized_model_metadata(small_pipeline):
    model = small_pipeline.model("pruned")
    quantized = model.quantized(16)
    assert quantized.metadata["quantized_bits"] == 16
    assert quantized.metadata["max_weight_error"] >= 0
    assert quantized.feature_names == model.feature_names


def test_quantized_model_preserves_sparsity(small_pipeline):
    model = small_pipeline.model("pruned")
    quantized = model.quantized(8)
    assert quantized.decision_model.sparsity == pytest.approx(
        model.decision_model.sparsity)


def test_quantized_16bit_agrees_with_float(small_pipeline, small_arch):
    from repro.gpu.counters import CounterSet
    model = small_pipeline.model("base")
    quantized = model.quantized(16)
    counters = CounterSet({name: 1.0 for name in model.feature_names})
    counters["issue_slots"] = 40_000.0
    counters["inst_total"] = 10_000.0
    for preset in (0.05, 0.10, 0.20):
        assert (model.decision_maker.predict_level(counters, preset)
                == quantized.decision_maker.predict_level(counters, preset))
