"""Kernel JSON (de)serialization."""

import json

import pytest

from repro.errors import WorkloadError
from repro.gpu.simulator import GPUSimulator
from repro.workloads.serialization import (kernel_from_dict, kernel_to_dict,
                                           load_kernels, phase_from_dict,
                                           save_kernels)
from repro.workloads.suites import kernel_by_name
from repro.core.policy import StaticPolicy


def test_phase_round_trip():
    kernel = kernel_by_name("rodinia.hotspot")
    phase = kernel.phases[0]
    payload = json.loads(json.dumps(kernel_to_dict(kernel)))
    restored = phase_from_dict(payload["phases"][0])
    assert restored.instructions == phase.instructions
    assert restored.cpi_exec == pytest.approx(phase.cpi_exec)
    assert restored.mix == pytest.approx(phase.mix)


def test_kernel_round_trip_through_file(tmp_path):
    kernels = [kernel_by_name("rodinia.bfs"), kernel_by_name("parboil.sgemm")]
    path = tmp_path / "kernels.json"
    save_kernels(kernels, path)
    restored = load_kernels(path)
    assert [k.name for k in restored] == [k.name for k in kernels]
    assert restored[0].total_instructions == kernels[0].total_instructions
    assert restored[1].phases[0].mix == pytest.approx(
        kernels[1].phases[0].mix)


def test_single_object_file(tmp_path):
    path = tmp_path / "one.json"
    path.write_text(json.dumps(kernel_to_dict(kernel_by_name("rodinia.nw"))))
    restored = load_kernels(path)
    assert len(restored) == 1
    assert restored[0].name == "rodinia.nw"


def test_loaded_kernel_simulates(tmp_path, small_arch):
    path = tmp_path / "k.json"
    save_kernels([kernel_by_name("rodinia.gaussian").with_iterations(2)],
                 path)
    kernel = load_kernels(path)[0]
    result = GPUSimulator(small_arch, kernel, seed=1).run(
        StaticPolicy(5), keep_records=False)
    assert result.time_s > 0


def test_defaults_and_remainder_fill():
    kernel = kernel_from_dict({
        "phases": [{"name": "p", "instructions": 50_000,
                    "mix": {"fp32": 0.3, "load": 0.2}}],
    })
    assert kernel.name == "custom.kernel"
    assert kernel.iterations == 1
    assert sum(kernel.phases[0].mix.values()) == pytest.approx(1.0)


def test_malformed_inputs_rejected(tmp_path):
    with pytest.raises(WorkloadError):
        phase_from_dict({"name": "p"})  # missing instructions
    with pytest.raises(WorkloadError):
        kernel_from_dict({"phases": []})
    with pytest.raises(WorkloadError):
        kernel_from_dict({})
    with pytest.raises(WorkloadError):
        load_kernels(tmp_path / "missing.json")
    bad = tmp_path / "bad.json"
    bad.write_text("not json {")
    with pytest.raises(WorkloadError):
        load_kernels(bad)
    scalar = tmp_path / "scalar.json"
    scalar.write_text("42")
    with pytest.raises(WorkloadError):
        load_kernels(scalar)


def test_invalid_phase_values_propagate_validation():
    with pytest.raises(WorkloadError):
        kernel_from_dict({
            "phases": [{"name": "p", "instructions": 1000,
                        "mix": {"fp32": 0.5}, "cpi_exec": 0.1}],
        })
