"""McPAT-surrogate power model and energy accounting."""

import pytest

from repro.errors import ConfigError, SimulationError
from repro.gpu.arch import titan_x_config
from repro.gpu.cluster import ClusterState
from repro.gpu.kernels import KernelProfile
from repro.gpu.noise import WorkloadNoise
from repro.gpu.phases import compute_phase, memory_phase
from repro.power.energy import EnergyAccount, performance_loss
from repro.power.model import PowerModel, PowerModelConfig
from repro.rng import stream
from repro.units import us

ARCH = titan_x_config()


def _activity(level=5, phase=None):
    kernel = KernelProfile(name="p.k", phases=[phase or compute_phase("c", 10 ** 8)])
    cluster = ClusterState(ARCH, kernel, WorkloadNoise(stream("pw", 1), 0.0))
    cluster.set_level(level)
    return cluster.run_epoch(us(10))


def test_cluster_power_positive():
    power = PowerModel().cluster_power(_activity())
    assert power.dynamic_w > 0
    assert power.static_w > 0
    assert power.total_w == pytest.approx(power.dynamic_w + power.static_w)


def test_energy_consistent_with_power():
    activity = _activity()
    power = PowerModel().cluster_power(activity)
    assert power.energy_j == pytest.approx(power.total_w * activity.duration_s)


def test_lower_vf_uses_less_power():
    model = PowerModel()
    hi = model.cluster_power(_activity(level=5))
    lo = model.cluster_power(_activity(level=0))
    assert lo.dynamic_w < hi.dynamic_w
    assert lo.static_w < hi.static_w


def test_voltage_scaling_is_superlinear_for_leakage():
    model = PowerModel()
    # Same frequency-independent leakage formula: V^3 by default.
    hi = model.cluster_power(_activity(level=5)).static_w
    lo = model.cluster_power(_activity(level=0)).static_w
    assert hi / lo == pytest.approx(1.155 ** 3, rel=1e-6)


def test_memory_phase_burns_less_core_power_than_compute():
    model = PowerModel()
    cmp_ = model.cluster_power(_activity(phase=compute_phase("c", 10 ** 8)))
    mem = model.cluster_power(_activity(phase=memory_phase("m", 10 ** 8)))
    assert mem.dynamic_w < cmp_.dynamic_w


def test_gpu_envelope_under_reasonable_bound():
    """Full load at default V/f must land in a plausible Titan X envelope."""
    model = PowerModel()
    activities = [_activity(phase=compute_phase("c", 10 ** 8, warps=56))
                  for _ in range(ARCH.num_clusters)]
    cluster_w = sum(model.cluster_power(a).total_w for a in activities)
    uncore_w = model.uncore_power(activities, us(10)).total_w
    total = cluster_w + uncore_w
    assert 120 < total < 400  # 250 W TDP class


def test_uncore_power_tracks_traffic():
    model = PowerModel()
    mem = [_activity(phase=memory_phase("m", 10 ** 8))] * 4
    cmp_ = [_activity(phase=compute_phase("c", 10 ** 8))] * 4
    assert (model.uncore_power(mem, us(10)).dram_w
            > model.uncore_power(cmp_, us(10)).dram_w)


def test_config_validation():
    with pytest.raises(ConfigError):
        PowerModelConfig(cluster_leakage_w=-1)
    with pytest.raises(ConfigError):
        PowerModelConfig(leakage_voltage_exponent=0.5)
    with pytest.raises(ConfigError):
        PowerModelConfig(epi_table={"fp32": -1.0})


def test_energy_account_accumulates():
    account = EnergyAccount()
    account.add(1.0, 0.5)
    account.add(2.0, 0.5)
    assert account.energy_j == pytest.approx(3.0)
    assert account.time_s == pytest.approx(1.0)
    assert account.average_power_w == pytest.approx(3.0)
    assert account.edp == pytest.approx(3.0)
    assert account.ed2p == pytest.approx(3.0)


def test_energy_account_rejects_negative():
    with pytest.raises(SimulationError):
        EnergyAccount().add(-1.0, 0.1)


def test_normalized_metrics():
    base = EnergyAccount(energy_j=10.0, time_s=2.0)
    run = EnergyAccount(energy_j=8.0, time_s=2.2)
    assert run.normalized_edp(base) == pytest.approx((8.0 * 2.2) / 20.0)
    assert run.normalized_latency(base) == pytest.approx(1.1)
    assert run.normalized_energy(base) == pytest.approx(0.8)


def test_performance_loss():
    assert performance_loss(1.1, 1.0) == pytest.approx(0.1)
    assert performance_loss(0.9, 1.0) == pytest.approx(-0.1)
    with pytest.raises(SimulationError):
        performance_loss(1.0, 0.0)
