"""Top-level GPU simulator."""

import numpy as np
import pytest

from repro.errors import SimulationError, SnapshotError
from repro.gpu.arch import small_test_config
from repro.gpu.kernels import KernelProfile
from repro.gpu.phases import compute_phase, memory_phase
from repro.gpu.simulator import GPUSimulator
from repro.power.model import PowerModel
from repro.units import us

ARCH = small_test_config(num_clusters=3)


def _kernel(iterations=4):
    return KernelProfile(
        name="sim.test",
        phases=[compute_phase("a", 15_000, warps=12),
                memory_phase("b", 10_000, warps=12)],
        iterations=iterations,
        jitter=0.05,
    )


class PinnedPolicy:
    """Test policy: always returns a fixed level."""

    def __init__(self, level):
        self.name = f"pinned-{level}"
        self.level = level

    def reset(self, simulator):
        simulator.set_all_levels(self.level)

    def decide(self, record):
        return self.level


def _sim(seed=3, kernel=None):
    return GPUSimulator(ARCH, kernel or _kernel(), PowerModel(), seed=seed)


def test_step_epoch_produces_full_record():
    sim = _sim()
    record = sim.step_epoch()
    assert record.index == 0
    assert record.duration_s == pytest.approx(us(10))
    assert len(record.cluster_counters) == ARCH.num_clusters
    assert record.instructions > 0
    assert record.energy_j > 0
    assert record.counters["power_per_core"] > 0


def test_power_counters_filled_per_cluster():
    record = _sim().step_epoch()
    for counters in record.cluster_counters:
        assert counters["power_per_core"] == pytest.approx(
            counters["power_dynamic"] + counters["power_static"])
        assert counters["energy_epoch"] > 0


def test_run_completes_kernel():
    sim = _sim()
    result = sim.run(PinnedPolicy(5))
    assert sim.finished
    assert result.time_s > 0
    assert result.energy_j > 0
    assert result.epochs == len(result.records)


def test_run_at_min_level_uses_less_power():
    fast = _sim(seed=3).run(PinnedPolicy(5))
    slow = _sim(seed=3).run(PinnedPolicy(0))
    assert slow.account.average_power_w < fast.account.average_power_w
    assert slow.time_s >= fast.time_s * 0.99


def test_deterministic_given_seed():
    a = _sim(seed=11).run(PinnedPolicy(5))
    b = _sim(seed=11).run(PinnedPolicy(5))
    assert a.time_s == pytest.approx(b.time_s)
    assert a.energy_j == pytest.approx(b.energy_j)


def test_different_seeds_differ():
    a = _sim(seed=11).run(PinnedPolicy(5))
    b = _sim(seed=12).run(PinnedPolicy(5))
    assert a.energy_j != pytest.approx(b.energy_j, rel=1e-9)


def test_final_epoch_truncation():
    """The run must not charge a full idle epoch at the end."""
    result = _sim().run(PinnedPolicy(5))
    # Total time must not be an exact multiple of the epoch unless the
    # kernel happened to end exactly on a boundary (last epoch truncated).
    last = result.records[-1]
    assert last.all_finished
    assert result.time_s <= result.epochs * us(10) + 1e-12


def test_apply_decision_broadcast_and_per_cluster():
    sim = _sim()
    sim.apply_decision(2)
    assert sim.levels == [2, 2, 2]
    sim.apply_decision([0, 1, 2])
    assert sim.levels == [0, 1, 2]
    with pytest.raises(SimulationError):
        sim.apply_decision([0, 1])


def test_apply_decision_numpy_scalar_broadcasts():
    """Regression: np.int64 (an MLP argmax) must broadcast, not be
    treated as a per-cluster sequence."""
    sim = _sim()
    sim.apply_decision(np.int64(2))
    assert sim.levels == [2, 2, 2]
    sim.apply_decision(np.argmax(np.array([0.1, 0.9, 0.2])))
    assert sim.levels == [1, 1, 1]
    sim.apply_decision(np.float64(3.0))
    assert sim.levels == [3, 3, 3]
    sim.apply_decision(np.array(0))  # 0-d array
    assert sim.levels == [0, 0, 0]
    sim.apply_decision(np.array([0, 1, 2]))  # 1-d stays per-cluster
    assert sim.levels == [0, 1, 2]


def test_step_after_finish_rejected():
    sim = _sim(kernel=_kernel(iterations=1))
    sim.run(PinnedPolicy(5))
    with pytest.raises(SimulationError):
        sim.step_epoch()


def test_run_until_instructions():
    sim = _sim()
    target = 30_000.0
    sim.run_until_instructions(target)
    assert sim.mean_instructions_done() >= target


def test_run_epochs_at_level():
    sim = _sim()
    records = sim.run_epochs_at_level(1, 3)
    assert len(records) == 3
    assert all(r.levels == [1, 1, 1] for r in records)


def test_snapshot_restore_replays_run():
    sim = _sim(seed=5)
    sim.step_epoch()
    snap = sim.snapshot()
    first = [sim.step_epoch().instructions for _ in range(3)]
    sim.restore(snap)
    second = [sim.step_epoch().instructions for _ in range(3)]
    assert first == pytest.approx(second)


def test_snapshot_epoch_length_mismatch_rejected():
    """Regression: restoring a snapshot taken with a different epoch_s
    must fail loudly instead of silently mixing epoch timings."""
    sim = _sim()
    snap = sim.snapshot()
    assert snap["epoch_s"] == pytest.approx(us(10))
    other = GPUSimulator(ARCH, _kernel(), PowerModel(), seed=3,
                         epoch_s=us(20))
    with pytest.raises(SnapshotError):
        other.restore(snap)
    # Legacy snapshots without the field restore against the current
    # epoch (nothing to check against).
    legacy = {k: v for k, v in sim.snapshot().items() if k != "epoch_s"}
    sim.restore(legacy)


def test_final_record_consistent_with_account():
    """Regression: the final partial epoch's record is truncated, so
    summed record durations/energies equal the run totals."""
    result = _sim().run(PinnedPolicy(5))
    assert sum(r.duration_s for r in result.records) == pytest.approx(
        result.time_s, abs=1e-15)
    assert sum(r.energy_j for r in result.records) == pytest.approx(
        result.energy_j, rel=1e-12)
    last = result.records[-1]
    assert last.all_finished
    assert last.duration_s <= us(10)
    assert last.duration_s == pytest.approx(
        min(us(10), max(last.finish_time_s, 1e-12)))


def test_snapshot_wrong_kernel_rejected():
    sim_a = _sim()
    other = GPUSimulator(ARCH, KernelProfile(
        name="other", phases=[compute_phase("x", 1000)]), PowerModel())
    snap = sim_a.snapshot()
    with pytest.raises(SnapshotError):
        other.restore(snap)


def test_max_epoch_guard():
    sim = _sim(kernel=_kernel(iterations=500))
    with pytest.raises(SimulationError):
        sim.run(PinnedPolicy(5), max_epochs=2)


def test_invalid_epoch_length_rejected():
    with pytest.raises(SimulationError):
        GPUSimulator(ARCH, _kernel(), PowerModel(), epoch_s=0.0)


def test_clusters_have_skew():
    sim = _sim()
    done = [c.instructions_done for c in sim.clusters]
    assert len(set(done)) > 1
