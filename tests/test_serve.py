"""Unit coverage of the always-on serving runtime components.

The circuit breaker gets property-based coverage (its contract must
hold for *every* outcome sequence, not just scripted ones); ingestion,
supervision, online calibration and the full runtime get scripted
scenarios pinned to the invariants the serve-chaos harness certifies
end-to-end.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.combined import SSMDVFSModel
from repro.errors import ServeError
from repro.faults import ServeFaultConfig, ServeFaultPlan
from repro.serve import (CLOSED, HALF_OPEN, OPEN, QUARANTINED, BreakerConfig,
                         CircuitBreaker, IngestConfig, OnlineCalibrator,
                         OnlineConfig, RequestQueue, ServeConfig,
                         ServeRequest, ServingRuntime, Supervisor,
                         SupervisorConfig, TelemetrySample, WindowAssembler)
from repro.store import ArtifactStore


# ---------------------------------------------------------------------------
# Circuit breaker: scripted transitions
# ---------------------------------------------------------------------------

def _breaker(**kwargs):
    defaults = dict(failure_threshold=2, latency_budget_s=50e-6,
                    open_ticks=4, probe_successes=2)
    defaults.update(kwargs)
    return CircuitBreaker(BreakerConfig(**defaults))


def test_breaker_trips_after_consecutive_failures():
    breaker = _breaker()
    for tick in range(2):
        assert breaker.allow(tick)
        breaker.record_failure(tick)
    assert breaker.state == OPEN
    assert breaker.counters["breaker_trips"] == 1
    assert not breaker.allow(2)
    assert breaker.counters["breaker_short_circuits"] == 1


def test_breaker_probes_after_open_window_and_closes():
    breaker = _breaker()
    for tick in range(2):
        breaker.allow(tick)
        breaker.record_failure(tick)
    # Inside the open window every call short-circuits.
    assert not breaker.allow(3)
    # Past it the breaker half-opens and admits probes.
    assert breaker.allow(5)
    assert breaker.state == HALF_OPEN
    breaker.record_success(5, 1e-6)
    assert breaker.allow(6)
    breaker.record_success(6, 1e-6)
    assert breaker.state == CLOSED
    assert breaker.counters["breaker_closes"] == 1


def test_breaker_probe_failure_reopens():
    breaker = _breaker()
    for tick in range(2):
        breaker.allow(tick)
        breaker.record_failure(tick)
    assert breaker.allow(10)
    breaker.record_failure(10)
    assert breaker.state == OPEN
    assert breaker.counters["breaker_reopens"] == 1
    assert not breaker.allow(11)


def test_breaker_slow_success_counts_as_failure():
    breaker = _breaker(failure_threshold=1)
    assert breaker.allow(0)
    breaker.record_success(0, 1.0)  # way over the 50us budget
    assert breaker.state == OPEN
    assert breaker.counters["breaker_slow_successes"] == 1


def test_breaker_rejects_unadmitted_outcome():
    breaker = _breaker()
    with pytest.raises(ServeError):
        breaker.record_failure(0)


# ---------------------------------------------------------------------------
# Circuit breaker: property-based contract
# ---------------------------------------------------------------------------

@given(st.lists(st.tuples(st.integers(0, 3), st.booleans()), max_size=80))
@settings(max_examples=200, deadline=None)
def test_breaker_never_serves_open_and_always_reprobes(steps):
    """The two-sided breaker contract over arbitrary outcome sequences.

    Safety: a call is never admitted through a circuit that opened
    fewer than ``open_ticks`` ago.  Liveness: once the open window has
    elapsed (and from HALF_OPEN) the breaker always re-probes — no
    sequence of outcomes can wedge it permanently open.
    """
    config = BreakerConfig(failure_threshold=2, latency_budget_s=50e-6,
                           open_ticks=5, probe_successes=2)
    breaker = CircuitBreaker(config)
    now = 0
    for advance, fail in steps:
        now += advance
        state_before = breaker.state
        opened_before = breaker._opened_at
        allowed = breaker.allow(now)
        if state_before == OPEN and now - opened_before < config.open_ticks:
            assert not allowed, "served through an open circuit"
        else:
            # CLOSED and HALF_OPEN always admit; OPEN past its window
            # must transition to HALF_OPEN and admit the probe.
            assert allowed, "breaker wedged: refused a due probe"
            assert breaker.state in (CLOSED, HALF_OPEN)
        if allowed:
            if fail:
                breaker.record_failure(now)
            else:
                breaker.record_success(now, 1e-6)


# ---------------------------------------------------------------------------
# Window assembler
# ---------------------------------------------------------------------------

def _sample(stream, seq, tick):
    return TelemetrySample(stream_id=stream, seq=seq, sent_tick=tick,
                           payload=f"w{seq}")


def test_assembler_delivers_in_order_and_dedupes():
    assembler = WindowAssembler(IngestConfig())
    assembler.offer(_sample(0, 1, 0), 0)  # early: future of the cursor
    assembler.offer(_sample(0, 0, 0), 0)
    assembler.offer(_sample(0, 0, 0), 0)  # duplicate
    delivered = assembler.pop_ready(0)
    assert [s.seq for s in delivered] == [0, 1]
    counters = assembler.observability_counters()
    assert counters["ingest_duplicates"] == 1
    assert counters["ingest_reordered"] == 1


def test_assembler_stalls_then_skips_confirmed_gap():
    config = IngestConfig(max_lag_ticks=3)
    assembler = WindowAssembler(config)
    assembler.offer(_sample(0, 0, 0), 0)
    assert [s.seq for s in assembler.pop_ready(0)] == [0]
    # seq 1 never arrives; 2 and 3 do.
    assembler.offer(_sample(0, 2, 1), 1)
    assembler.offer(_sample(0, 3, 1), 1)
    assert assembler.pop_ready(1) == []  # stalled, waiting for seq 1
    assert assembler.pop_ready(2) == []
    delivered = assembler.pop_ready(1 + config.max_lag_ticks)
    assert [s.seq for s in delivered] == [2, 3]
    assert assembler.observability_counters()["ingest_gap_skips"] == 1


def test_assembler_drops_stale_samples():
    config = IngestConfig(staleness_ticks=4)
    assembler = WindowAssembler(config)
    assembler.offer(_sample(0, 0, 0), 10)  # 10 ticks old on arrival
    assert assembler.pop_ready(10) == []
    assert assembler.observability_counters()["ingest_stale_drops"] == 1


def test_assembler_bounds_the_reorder_buffer():
    config = IngestConfig(max_pending=2, max_lag_ticks=1,
                          staleness_ticks=100)
    assembler = WindowAssembler(config)
    for seq in (5, 6, 7):  # cursor at 0: everything buffers
        assembler.offer(_sample(0, seq, 0), 0)
    assert assembler.observability_counters()[
        "ingest_buffer_evictions"] == 1
    # The oldest context (5, 6) survives; the newest (7) was refused.
    assembler.pop_ready(0)
    delivered = assembler.pop_ready(1)
    assert [s.seq for s in delivered] == [5, 6]


# ---------------------------------------------------------------------------
# Request queue
# ---------------------------------------------------------------------------

def _request(rid, *, arrival=0, deadline=50, deadline_class=False):
    return ServeRequest(request_id=rid, stream_id=0, seq=rid,
                        arrival_tick=arrival, deadline_tick=deadline,
                        deadline_class=deadline_class, payload=None)


def test_queue_overflow_sheds_youngest_batch_class_first():
    queue = RequestQueue(capacity=2)
    assert queue.offer(_request(0, deadline_class=True))
    assert queue.offer(_request(1))
    assert queue.offer(_request(2, deadline_class=True))
    assert [r.request_id for r in queue.queue] == [0, 2]
    (shed,) = queue.shed
    assert shed.request_id == 1 and shed.reason == "overflow"
    assert not shed.under_capacity


def test_queue_full_of_deadline_class_refuses_newcomer():
    queue = RequestQueue(capacity=2)
    queue.offer(_request(0, deadline_class=True))
    queue.offer(_request(1, deadline_class=True))
    assert not queue.offer(_request(2, deadline_class=True))
    (shed,) = queue.shed
    assert shed.request_id == 2
    assert not shed.under_capacity  # at capacity by definition


def test_queue_sheds_expired_requests_at_dispatch():
    queue = RequestQueue(capacity=4, service_ticks=2)
    queue.offer(_request(0, deadline=5, deadline_class=True))
    queue.offer(_request(1, deadline=50))
    # At tick 4 the remaining slack (1) cannot cover service (2).
    request = queue.pop_serviceable(4)
    assert request.request_id == 1
    (shed,) = queue.shed
    assert shed.reason == "deadline" and not shed.under_capacity


def test_queue_refuses_infeasible_request_at_the_door():
    queue = RequestQueue(capacity=4, service_ticks=3)
    assert not queue.offer(_request(0, arrival=10, deadline=11))
    (shed,) = queue.shed
    assert shed.reason == "infeasible" and shed.under_capacity


def test_queue_drain_accounts_everything():
    queue = RequestQueue(capacity=4)
    for rid in range(3):
        queue.offer(_request(rid))
    assert queue.drain() == 3
    assert len(queue.shed) == 3
    assert queue.observability_counters()["serve_shed_drain"] == 3


# ---------------------------------------------------------------------------
# Supervisor
# ---------------------------------------------------------------------------

def _supervisor(num_workers=2, **kwargs):
    defaults = dict(backoff_base_ticks=2, backoff_cap_ticks=8,
                    liveness_ticks=3, pin_after=2, quarantine_after=4)
    defaults.update(kwargs)
    builds = []

    def build_stack(worker_id):
        builds.append(worker_id)
        return {"id": worker_id}, len(builds) > num_workers

    return Supervisor(num_workers, build_stack,
                      SupervisorConfig(**defaults)), builds


def test_supervisor_restarts_crashed_worker_with_backoff():
    supervisor, builds = _supervisor()
    supervisor.dispatch(supervisor.workers[0], "req", 0, 1)
    lost = supervisor.crash(0, 0)
    assert lost == "req"
    assert not supervisor.workers[0].ready
    supervisor.tick(1)
    assert not supervisor.workers[0].ready  # backoff (2 ticks) pending
    supervisor.tick(2)
    assert supervisor.workers[0].ready
    counters = supervisor.observability_counters()
    assert counters["supervisor_restarts"] == 1
    assert counters["supervisor_restores"] == 1  # rebuilt from the store
    assert supervisor.recovery_ticks() == [2]


def test_supervisor_escalates_to_pin_then_quarantine():
    supervisor, _ = _supervisor(num_workers=1)
    now = 0
    for crash in range(4):
        supervisor.crash(0, now)
        worker = supervisor.workers[0]
        if crash < 3:
            while not worker.ready:
                now += 1
                supervisor.tick(now)
        now += 1
    worker = supervisor.workers[0]
    assert worker.state == QUARANTINED
    assert worker.pinned
    counters = supervisor.observability_counters()
    assert counters["supervisor_pinned"] == 1
    assert counters["supervisor_quarantined"] == 1
    assert supervisor.quarantined() == 1
    assert supervisor.ready_workers() == []


def test_supervisor_liveness_probe_kills_wedged_worker():
    supervisor, _ = _supervisor()
    supervisor.dispatch(supervisor.workers[0], "req", 0, 1)
    supervisor.hang(0, 0)
    failures = []
    for tick in range(1, 6):
        _, failed = supervisor.tick(tick)
        failures.extend(failed)
    assert failures == ["req"]  # lost to the liveness kill, exactly once
    counters = supervisor.observability_counters()
    assert counters["supervisor_liveness_kills"] == 1
    assert counters["supervisor_hangs"] == 1


def test_supervisor_refuses_dispatch_to_busy_worker():
    supervisor, _ = _supervisor()
    worker = supervisor.workers[0]
    supervisor.dispatch(worker, "a", 0, 5)
    with pytest.raises(ServeError):
        supervisor.dispatch(worker, "b", 0, 5)


# ---------------------------------------------------------------------------
# Online calibration gates
# ---------------------------------------------------------------------------

def _online(small_pipeline, tmp_path, **kwargs):
    model = SSMDVFSModel.from_bytes(
        small_pipeline.models["base"].to_bytes())
    store = ArtifactStore(tmp_path)
    store.put("pair", model.to_bytes(), schema="ssmdvfs-pair/v1",
              mark_good=True)
    defaults = dict(update_interval=8, epochs=4, probation_windows=4,
                    tolerance=10.0, max_buffer=64)
    defaults.update(kwargs)
    online = OnlineCalibrator(model, store, "pair",
                              OnlineConfig(**defaults), seed=0)
    return online, store, model


def _feed(online, count, width):
    rng = np.random.default_rng(0)
    for _ in range(count):
        online.observe(rng.uniform(0.1, 1.0, size=width), 2, 1.0)


def test_online_update_promotes_and_blesses_after_probation(
        small_pipeline, tmp_path):
    online, store, model = _online(small_pipeline, tmp_path)
    width = model.calibrator.extractor.width
    _feed(online, 8, width)
    assert online.maybe_update() == "promoted"
    assert online.model is not model
    version = store.latest_version("pair")
    assert version == 2
    assert store.last_known_good("pair") == 1  # on probation, unblessed
    _feed(online, 4, width)  # probation windows elapse cleanly
    assert store.last_known_good("pair") == 2
    counters = online.observability_counters()
    assert counters["online_updates_promoted"] == 1
    assert counters["online_marked_good"] == 1


def test_online_poisoned_update_is_rejected(small_pipeline, tmp_path):
    online, store, model = _online(small_pipeline, tmp_path)
    width = model.calibrator.extractor.width
    _feed(online, 8, width)
    online.poison_next_update()
    assert online.maybe_update() == "rejected"
    assert online.model is model  # the incumbent keeps serving
    assert store.latest_version("pair") == 1  # nothing was published
    counters = online.observability_counters()
    assert counters["online_poison_injected"] == 1
    assert counters["online_updates_rejected"] == 1


def test_online_drift_alarm_aborts_probation(small_pipeline, tmp_path):
    online, store, model = _online(small_pipeline, tmp_path)
    width = model.calibrator.extractor.width
    _feed(online, 8, width)
    assert online.maybe_update() == "promoted"
    online.drift_alarmed()
    _feed(online, 8, width)
    # The aborted promotion must never be blessed afterwards.
    assert store.last_known_good("pair") == 1
    assert online.observability_counters()[
        "online_probation_aborted"] == 1


def test_online_rejects_nonfinite_labels(small_pipeline, tmp_path):
    online, _, model = _online(small_pipeline, tmp_path)
    width = model.calibrator.extractor.width
    online.observe(np.ones(width), 2, float("nan"))
    online.observe(np.full(width, np.inf), 2, 1.0)
    counters = online.observability_counters()
    assert counters["online_label_rejected"] == 2
    assert "online_samples" not in counters


# ---------------------------------------------------------------------------
# Serving runtime end-to-end
# ---------------------------------------------------------------------------

CHAOTIC = ServeFaultConfig(crash_rate=1.5, hang_rate=1.0, stall_rate=1.0,
                           storm_rate=1.0, gap_rate=1.0, poison_rate=1.0,
                           burst_rate=1.0, seed=9)


def test_runtime_governor_mode_conserves_and_replays(small_arch):
    config = ServeConfig(streams=2, ticks=120, num_workers=2,
                         faults=CHAOTIC, seed=9)
    result = ServingRuntime(small_arch, config, workers=0).run()
    assert result.conserved
    assert result.submitted > 0 and result.served > 0
    assert result.counters.get("serve_invalid_decisions", 0) == 0
    assert result.unrecovered == 0
    replay = ServingRuntime(small_arch, config, workers=2).run()
    assert (json.dumps(replay.to_payload(), sort_keys=True)
            == json.dumps(result.to_payload(), sort_keys=True))


def test_runtime_ml_mode_serves_through_chaos(small_arch, small_pipeline,
                                              tmp_path):
    model = SSMDVFSModel.from_bytes(
        small_pipeline.models["base"].to_bytes())
    config = ServeConfig(streams=2, ticks=160, num_workers=2,
                         faults=CHAOTIC, seed=4)
    runtime = ServingRuntime(small_arch, config, model=model,
                             store_root=tmp_path, workers=0)
    result = runtime.run()
    assert result.policy_name == "ssmdvfs+serve"
    assert result.conserved
    assert result.counters.get("serve_invalid_decisions", 0) == 0
    assert 0 <= result.min_level_served
    assert result.max_level_served < result.num_levels
    # The initial pair was checkpointed, so any restart restores it.
    store = ArtifactStore(tmp_path)
    assert store.latest_version("serve-pair") >= 1
    restarts = result.counters.get("supervisor_restarts", 0)
    assert result.counters.get("supervisor_restores", 0) == restarts


def test_runtime_validates_scenario_config():
    with pytest.raises(ServeError):
        ServeConfig(streams=0)
    with pytest.raises(ServeError):
        ServeConfig(deadline_slack_ticks=0)
    with pytest.raises(ServeError):
        ServeConfig(batch_slack_ticks=4, deadline_slack_ticks=8)


def test_fault_plan_is_deterministic_and_validates():
    config = ServeFaultConfig(crash_rate=2.0, hang_rate=1.0, seed=5)
    plan_a = ServeFaultPlan.build(config, 2, 3, 200)
    plan_b = ServeFaultPlan.build(config, 2, 3, 200)
    assert plan_a.to_payload() == plan_b.to_payload()
    plan_a.validate_for(2, 3)
    for event in plan_a:
        assert 0 <= event.at_tick < 200
