"""Detailed per-cycle model, and its agreement with the interval model."""

import numpy as np
import pytest

from repro.errors import ConfigError, SimulationError
from repro.gpu.arch import titan_x_config
from repro.gpu.detailed.cache import SetAssociativeCache
from repro.gpu.detailed.memsys import MemorySubsystem
from repro.gpu.detailed.sm import DetailedSM
from repro.gpu.interval_model import solve_throughput
from repro.gpu.phases import compute_phase, memory_phase

ARCH = titan_x_config()
F_HI = 1165e6
F_LO = 683e6


# ---------------------------------------------------------------------------
# Cache
# ---------------------------------------------------------------------------

def test_cache_geometry_validation():
    with pytest.raises(ConfigError):
        SetAssociativeCache(0, 4, 128)
    with pytest.raises(ConfigError):
        SetAssociativeCache(1000, 3, 128)  # not divisible


def test_cache_hit_after_fill():
    cache = SetAssociativeCache(4096, 4, 128)
    assert not cache.access(0)       # cold miss
    assert cache.access(0)           # now hot
    assert cache.access(64)          # same line
    assert cache.hits == 2 and cache.misses == 1


def test_cache_lru_eviction():
    cache = SetAssociativeCache(2 * 128, 2, 128)  # 1 set, 2 ways
    cache.access(0)
    cache.access(128)
    cache.access(0)          # touch line 0 -> line 1 becomes LRU
    cache.access(256)        # evicts line 1
    assert cache.access(0)   # line 0 still resident
    assert not cache.access(128)  # line 1 was evicted


def test_cache_streaming_misses():
    cache = SetAssociativeCache(8192, 4, 128)
    for i in range(200):
        cache.access(i * 128 * 64)  # far-apart lines: mostly conflict
    assert cache.miss_rate > 0.9


def test_cache_reset_stats():
    cache = SetAssociativeCache(4096, 4, 128)
    cache.access(0)
    cache.reset_stats()
    assert cache.accesses == 0


# ---------------------------------------------------------------------------
# Memory subsystem
# ---------------------------------------------------------------------------

def test_memsys_l2_latency():
    mem = MemorySubsystem(180.0, 320.0, 14e9, 128)
    assert mem.l2_request_ready_s(0.0) == pytest.approx(180e-9)


def test_memsys_dram_latency_and_bandwidth():
    mem = MemorySubsystem(180.0, 320.0, 14e9, 128)
    first = mem.dram_request_ready_s(0.0)
    assert first == pytest.approx(500e-9)
    # Saturate: issue many requests at t=0; they serialize on the
    # channel at line/bandwidth spacing.
    times = [mem.dram_request_ready_s(0.0) for _ in range(100)]
    spacing = np.diff(times)
    assert np.allclose(spacing, 128 / 14e9)
    assert mem.dram_bytes == 101 * 128


def test_memsys_validation():
    with pytest.raises(ConfigError):
        MemorySubsystem(-1, 320, 14e9, 128)
    with pytest.raises(ConfigError):
        MemorySubsystem(180, 320, 0, 128)


# ---------------------------------------------------------------------------
# Detailed SM vs interval model
# ---------------------------------------------------------------------------

@pytest.mark.slow
def test_detailed_matches_target_miss_rate():
    phase = memory_phase("m", 10_000, warps=32)
    result = DetailedSM(ARCH, phase, F_HI, seed=1).run(6000)
    assert result.l1_miss_rate == pytest.approx(phase.l1_miss_rate, abs=0.08)


@pytest.mark.slow
def test_detailed_instruction_mix_matches_phase():
    phase = memory_phase("m", 10_000, warps=32)
    result = DetailedSM(ARCH, phase, F_HI, seed=2).run(6000)
    for cls, frac in phase.mix.items():
        observed = result.inst_by_class[cls] / result.instructions
        assert observed == pytest.approx(frac, abs=0.05)


@pytest.mark.slow
def test_detailed_more_warps_more_throughput():
    lo = DetailedSM(ARCH, compute_phase("c", 1, warps=4), F_HI, seed=3)
    hi = DetailedSM(ARCH, compute_phase("c", 1, warps=32), F_HI, seed=3)
    assert hi.run(5000).ipc > lo.run(5000).ipc * 1.5


@pytest.mark.slow
def test_frequency_sensitivity_agreement_compute():
    """Both models must call a compute phase frequency-sensitive."""
    phase = compute_phase("c", 10_000, warps=16)
    det_hi = DetailedSM(ARCH, phase, F_HI, seed=4).run(8000)
    det_lo = DetailedSM(ARCH, phase, F_LO, seed=4).run(8000)
    detailed_ratio = (det_hi.ipc * F_HI) / (det_lo.ipc * F_LO)
    ana_ratio = (solve_throughput(ARCH, phase, F_HI).ipc * F_HI
                 / (solve_throughput(ARCH, phase, F_LO).ipc * F_LO))
    assert detailed_ratio > 1.4
    assert detailed_ratio == pytest.approx(ana_ratio, rel=0.2)


@pytest.mark.slow
def test_frequency_sensitivity_agreement_memory():
    """Both models must call a memory phase frequency-insensitive."""
    phase = memory_phase("m", 10_000, warps=32)
    det_hi = DetailedSM(ARCH, phase, F_HI, seed=5).run(8000)
    det_lo = DetailedSM(ARCH, phase, F_LO, seed=5).run(8000)
    detailed_ratio = (det_hi.ipc * F_HI) / (det_lo.ipc * F_LO)
    assert detailed_ratio < 1.25


@pytest.mark.slow
def test_detailed_validation_errors():
    phase = compute_phase("c", 10_000)
    with pytest.raises(SimulationError):
        DetailedSM(ARCH, phase, 0.0)
    with pytest.raises(SimulationError):
        DetailedSM(ARCH, phase, F_HI).run(0)
