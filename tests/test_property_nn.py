"""Property-based tests: NN framework invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.flops import model_flops
from repro.nn.losses import softmax
from repro.nn.mlp import MLP
from repro.nn.prune import magnitude_prune, neuron_prune
from repro.nn.quant import choose_format
from repro.nn.serialize import model_from_arrays, model_to_arrays


@st.composite
def mlp_shapes(draw):
    depth = draw(st.integers(1, 4))
    sizes = [draw(st.integers(1, 24)) for _ in range(depth + 2)]
    return sizes


@given(st.lists(st.lists(st.floats(-50.0, 50.0), min_size=2, max_size=8),
                min_size=1, max_size=6).filter(
                    lambda rows: len({len(r) for r in rows}) == 1))
@settings(max_examples=100, deadline=None)
def test_softmax_rows_always_distributions(rows):
    probs = softmax(np.array(rows))
    assert np.all(probs >= 0)
    assert np.allclose(probs.sum(axis=1), 1.0)


@given(mlp_shapes(), st.integers(0, 10_000))
@settings(max_examples=60, deadline=None)
def test_forward_output_shape_and_finiteness(sizes, seed):
    model = MLP(sizes, rng=np.random.default_rng(seed))
    x = np.random.default_rng(seed + 1).normal(size=(5, sizes[0]))
    out = model.forward(x)
    assert out.shape == (5, sizes[-1])
    assert np.isfinite(out).all()


@given(mlp_shapes(), st.floats(0.0, 0.95), st.integers(0, 10_000))
@settings(max_examples=60, deadline=None)
def test_magnitude_prune_achieves_requested_sparsity(sizes, fraction, seed):
    model = MLP(sizes, rng=np.random.default_rng(seed))
    magnitude_prune(model, fraction)
    total = sum(layer.weights.size for layer in model.layers)
    # Quantile ties can over/under-shoot slightly on tiny models.
    assert model.sparsity >= fraction - 2.0 / total - 0.05
    assert np.isfinite(model.forward(np.zeros((1, sizes[0])))).all()


@given(mlp_shapes(), st.floats(0.05, 1.0), st.integers(0, 10_000))
@settings(max_examples=60, deadline=None)
def test_neuron_prune_never_empties_a_layer(sizes, threshold, seed):
    model = MLP(sizes, rng=np.random.default_rng(seed))
    magnitude_prune(model, 0.9)
    neuron_prune(model, threshold)
    assert all(width >= 1 for width in model.layer_sizes)
    out = model.forward(np.ones((2, sizes[0])))
    assert out.shape == (2, sizes[-1])


@given(mlp_shapes(), st.integers(0, 10_000))
@settings(max_examples=60, deadline=None)
def test_sparse_flops_never_exceed_dense(sizes, seed):
    model = MLP(sizes, rng=np.random.default_rng(seed))
    magnitude_prune(model, 0.5)
    assert model_flops(model, sparse=True) <= model_flops(model, sparse=False)


@given(mlp_shapes(), st.integers(0, 10_000))
@settings(max_examples=40, deadline=None)
def test_serialize_round_trip_preserves_function(sizes, seed):
    model = MLP(sizes, rng=np.random.default_rng(seed))
    magnitude_prune(model, 0.3)
    restored = model_from_arrays(model_to_arrays(model))
    x = np.random.default_rng(seed + 2).normal(size=(4, sizes[0]))
    assert np.allclose(model.forward(x), restored.forward(x))


@given(st.lists(st.floats(-1000.0, 1000.0), min_size=1, max_size=50),
       st.integers(4, 24))
@settings(max_examples=100, deadline=None)
def test_quantization_error_bounded_by_half_lsb(values, bits):
    array = np.array(values)
    fmt = choose_format(array, bits)
    quantized = fmt.quantize(array)
    in_range = (array >= fmt.min_value) & (array <= fmt.max_value)
    error = np.abs(quantized - array)[in_range]
    assert np.all(error <= fmt.scale / 2 + 1e-12)


@given(st.lists(st.floats(-1000.0, 1000.0), min_size=1, max_size=50),
       st.integers(2, 24))
@settings(max_examples=100, deadline=None)
def test_quantization_always_saturates_inside_format(values, bits):
    array = np.array(values)
    fmt = choose_format(array, bits)
    quantized = fmt.quantize(array)
    assert np.all(quantized <= fmt.max_value + 1e-12)
    assert np.all(quantized >= fmt.min_value - 1e-12)
