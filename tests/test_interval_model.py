"""Interval throughput model — the physics of the reproduction."""

import pytest

from repro.errors import SimulationError
from repro.gpu.arch import titan_x_config
from repro.gpu.interval_model import (frequency_sensitivity, solve_throughput)
from repro.gpu.phases import compute_phase, memory_phase
from repro.units import mhz

ARCH = titan_x_config()
F_MAX = mhz(1165)
F_MIN = mhz(683)


def test_ipc_positive_and_bounded():
    phase = compute_phase("c", 10_000)
    sol = solve_throughput(ARCH, phase, F_MAX)
    assert 0 < sol.ipc <= ARCH.issue_width


def test_more_warps_means_more_throughput():
    lo = compute_phase("c", 10_000, warps=4)
    hi = compute_phase("c", 10_000, warps=32)
    assert (solve_throughput(ARCH, lo, F_MAX).ipc
            < solve_throughput(ARCH, hi, F_MAX).ipc)


def test_compute_bound_scales_with_frequency():
    """A compute phase's wall-clock time should shrink ~linearly with f."""
    phase = compute_phase("c", 10_000, warps=16)  # few warps: not BW-bound
    slowdown = frequency_sensitivity(ARCH, phase, F_MAX, F_MIN)
    ideal = F_MAX / F_MIN  # 1.706
    assert slowdown == pytest.approx(ideal, rel=0.08)


def test_memory_bound_is_frequency_insensitive():
    phase = memory_phase("m", 10_000, l1_miss=0.8, l2_miss=0.8)
    slowdown = frequency_sensitivity(ARCH, phase, F_MAX, F_MIN)
    assert slowdown < 1.12  # far below the 1.71 compute-bound limit


def test_sensitivity_ordering_compute_vs_memory():
    cmp_ = compute_phase("c", 10_000, warps=16)
    mem = memory_phase("m", 10_000)
    assert (frequency_sensitivity(ARCH, cmp_, F_MAX, F_MIN)
            > frequency_sensitivity(ARCH, mem, F_MAX, F_MIN))


def test_same_frequency_sensitivity_is_one():
    phase = memory_phase("m", 10_000)
    assert frequency_sensitivity(ARCH, phase, F_MAX, F_MAX) == pytest.approx(1.0)


def test_memory_phase_has_memory_stalls_dominant():
    phase = memory_phase("m", 10_000)
    sol = solve_throughput(ARCH, phase, F_MAX)
    assert sol.stall_mem_total > sol.stall_control
    assert sol.stall_mem_load > sol.stall_mem_other


def test_stall_slots_account_for_issue_budget():
    phase = memory_phase("m", 10_000)
    sol = solve_throughput(ARCH, phase, F_MAX)
    slots_per_inst = ARCH.issue_width * sol.cycles_per_instruction
    assert 1.0 + sol.total_stall_slots == pytest.approx(slots_per_inst, rel=1e-6)


def test_bandwidth_cap_engages_on_streaming_phase():
    phase = memory_phase("m", 10_000, warps=48, l1_miss=0.9, l2_miss=0.9)
    sol = solve_throughput(ARCH, phase, F_MAX)
    assert sol.bandwidth_limited
    assert sol.bandwidth_utilization == pytest.approx(1.0, abs=1e-6)


def test_bandwidth_cap_relaxing_at_low_frequency():
    """At lower core frequency the same phase demands less bandwidth."""
    phase = memory_phase("m", 10_000, warps=48, l1_miss=0.9, l2_miss=0.9)
    hi = solve_throughput(ARCH, phase, F_MAX)
    lo = solve_throughput(ARCH, phase, F_MIN)
    assert lo.ipc > hi.ipc  # per-cycle throughput improves as f drops


def test_time_for_instructions_matches_ipc():
    phase = compute_phase("c", 10_000)
    sol = solve_throughput(ARCH, phase, F_MAX)
    t = sol.time_for_instructions(10_000)
    assert t == pytest.approx(10_000 / sol.ipc / F_MAX)


def test_instructions_in_time_is_inverse():
    phase = compute_phase("c", 10_000)
    sol = solve_throughput(ARCH, phase, F_MAX)
    t = sol.time_for_instructions(5_000)
    assert sol.instructions_in_time(t) == pytest.approx(5_000)


def test_jitter_multipliers_shift_throughput():
    phase = compute_phase("c", 10_000, warps=8)
    base = solve_throughput(ARCH, phase, F_MAX)
    fewer_warps = solve_throughput(ARCH, phase, F_MAX, warp_multiplier=0.5)
    assert fewer_warps.ipc < base.ipc


def test_higher_miss_rate_lowers_throughput():
    phase = memory_phase("m", 10_000, warps=8, l1_miss=0.4)
    base = solve_throughput(ARCH, phase, F_MAX)
    worse = solve_throughput(ARCH, phase, F_MAX, miss_multiplier=1.5)
    assert worse.ipc < base.ipc
    assert worse.mem_latency_cycles > base.mem_latency_cycles


def test_invalid_inputs_rejected():
    phase = compute_phase("c", 10_000)
    with pytest.raises(SimulationError):
        solve_throughput(ARCH, phase, 0.0)
    with pytest.raises(SimulationError):
        solve_throughput(ARCH, phase, F_MAX, warp_multiplier=0.0)
    sol = solve_throughput(ARCH, phase, F_MAX)
    with pytest.raises(SimulationError):
        sol.time_for_instructions(-1)
