"""Fleet layer: traces, deadline queue, placement, replay, CLI."""

import json

import pytest

from repro.cli import main
from repro.errors import FleetError
from repro.fleet import (BUILTIN_TRACES, LATENCY, THROUGHPUT,
                         ClusterScheduler, Job, NodeTracker,
                         PendingJobQueue, ThermalConfig, TraceConfig,
                         build_trace, policy_factory, tail_latencies)
from repro.parallel import CampaignStats


def _jobs(arch, **overrides):
    config = dict(trace="steady", jobs=12, nodes=4, load=0.7, seed=5)
    config.update(overrides)
    return build_trace(arch, TraceConfig(**config))


def _job(job_id, arrival_s=0.0, deadline_s=1.0, expected_s=1e-4,
         job_class=LATENCY):
    return Job(job_id=job_id, name=f"j{job_id}", job_class=job_class,
               kernel=None, arrival_s=arrival_s, expected_s=expected_s,
               deadline_s=deadline_s)


# ---------------------------------------------------------------------------
# Traces
# ---------------------------------------------------------------------------

def test_traces_are_deterministic_and_classed(small_arch):
    for trace in BUILTIN_TRACES:
        jobs = _jobs(small_arch, trace=trace)
        assert jobs == _jobs(small_arch, trace=trace)
        assert len(jobs) == 12
        arrivals = [j.arrival_s for j in jobs]
        assert arrivals == sorted(arrivals) and arrivals[0] >= 0.0
        classes = {j.job_class for j in jobs}
        assert classes == {LATENCY, THROUGHPUT}


def test_trace_deadlines_follow_class_factors(small_arch):
    config = TraceConfig(trace="steady", jobs=10, nodes=2, seed=3)
    for job in build_trace(small_arch, config):
        factor = (config.latency_deadline_factor
                  if job.job_class == LATENCY
                  else config.throughput_deadline_factor)
        assert job.deadline_s == pytest.approx(
            job.arrival_s + factor * job.expected_s)
        assert job.slack_s > 0


def test_trace_seed_changes_arrivals(small_arch):
    assert [j.arrival_s for j in _jobs(small_arch, seed=1)] != \
        [j.arrival_s for j in _jobs(small_arch, seed=2)]


@pytest.mark.parametrize("bad", [
    dict(trace="nope"), dict(jobs=0), dict(nodes=0), dict(load=0.0),
    dict(load=-1.0), dict(latency_fraction=1.5),
])
def test_trace_config_validation(bad):
    with pytest.raises(FleetError):
        TraceConfig(**{**dict(trace="steady"), **bad})


# ---------------------------------------------------------------------------
# Deadline queue
# ---------------------------------------------------------------------------

def test_queue_orders_by_deadline_then_arrival():
    queue = PendingJobQueue()
    queue.push(_job(0, deadline_s=3.0))
    queue.push(_job(1, deadline_s=1.0))
    queue.push(_job(2, deadline_s=2.0))
    assert [queue.pop().job_id for _ in range(3)] == [1, 2, 0]


def test_queue_breaks_deadline_ties_fifo():
    queue = PendingJobQueue()
    for job_id in (7, 3, 5):
        queue.push(_job(job_id, deadline_s=1.0))
    assert [queue.pop().job_id for _ in range(3)] == [7, 3, 5]


def test_queue_tracks_peak_depth_and_raises_when_empty():
    queue = PendingJobQueue()
    for job_id in range(4):
        queue.push(_job(job_id))
    while queue:
        queue.pop()
    assert queue.peak_depth == 4
    with pytest.raises(FleetError):
        queue.pop()
    with pytest.raises(FleetError):
        queue.peek()


# ---------------------------------------------------------------------------
# Node tracker
# ---------------------------------------------------------------------------

def test_tracker_prefers_idle_then_lowest_id():
    tracker = NodeTracker(3)
    first = tracker.least_contended(0.0)
    assert first.node_id == 0
    tracker.assign(first, _job(0), 0.0, 1.0)
    second = tracker.least_contended(0.0)
    assert second.node_id == 1


def test_tracker_thermal_state_rises_and_cools():
    tracker = NodeTracker(1, thermal=ThermalConfig(tau_s=1e-3))
    node = tracker.nodes[0]
    ambient = node.temperature_c
    tracker.assign(node, _job(0), 0.0, 1e-4)
    tracker.complete(node, 1e-4, 1e-4, energy_j=0.5, mean_level=3.0)
    hot = node.temperature_c
    assert hot > ambient
    tracker.least_contended(1.0)  # cool-down far past tau
    assert ambient <= node.temperature_c < hot
    assert node.peak_temperature_c == pytest.approx(hot)


def test_tracker_rejects_time_travel_assignment():
    tracker = NodeTracker(1)
    node = tracker.nodes[0]
    tracker.assign(node, _job(0), 0.0, 1.0)
    with pytest.raises(FleetError):
        tracker.assign(node, _job(1), 0.5, 2.0)


# ---------------------------------------------------------------------------
# Scheduler replay
# ---------------------------------------------------------------------------

def _schedule(arch, jobs, *, workers=None, seed=5, nodes=4,
              stats=None):
    scheduler = ClusterScheduler(
        arch, policy_factory("governor"), num_nodes=nodes,
        policy_name="governor", seed=seed, workers=workers, stats=stats)
    return scheduler.run(jobs, trace_name="test")


def test_replay_is_deterministic_across_worker_counts(small_arch):
    jobs = _jobs(small_arch)
    serial = _schedule(small_arch, jobs)
    again = _schedule(small_arch, jobs)
    pooled = _schedule(small_arch, jobs, workers=2)
    assert serial.to_payload() == again.to_payload()
    assert serial.to_payload() == pooled.to_payload()


def test_replay_accounts_every_job_once(small_arch):
    jobs = _jobs(small_arch)
    result = _schedule(small_arch, jobs)
    assert sorted(o.job_id for o in result.outcomes) == \
        sorted(j.job_id for j in jobs)
    for outcome in result.outcomes:
        assert 0 <= outcome.node_id < 4
        assert outcome.start_s >= outcome.arrival_s
        assert outcome.finish_s == pytest.approx(
            outcome.start_s + outcome.service_s)
    assert result.makespan_s > 0
    assert result.fleet_edp == pytest.approx(
        result.total_energy_j * result.makespan_s)


def test_overload_violates_slos_and_counts_them(small_arch):
    jobs = _jobs(small_arch, trace="burst", jobs=16, nodes=2, load=6.0)
    stats = CampaignStats()
    result = _schedule(small_arch, jobs, nodes=2, stats=stats)
    assert result.violations() > 0
    assert 0.0 < result.slo_violation_rate() <= 1.0
    assert result.peak_queue_depth > 1
    assert stats.counters["fleet_jobs"] == 16
    assert stats.counters["fleet_dispatches"] == 16
    assert stats.counters["fleet_slo_violations"] == result.violations()
    # The tight-deadline class must violate at least as often.
    assert result.slo_violation_rate(LATENCY) >= \
        result.slo_violation_rate(THROUGHPUT)


def test_empty_stream_and_bad_policy_raise():
    with pytest.raises(FleetError):
        policy_factory("warp-drive")
    with pytest.raises(FleetError):
        policy_factory("ssmdvfs")  # needs a model
    with pytest.raises(FleetError):
        policy_factory("static")  # needs a level


def test_tail_latencies_handle_empty_and_ordered_samples():
    assert tail_latencies([]) == {"p50": 0.0, "p95": 0.0, "p99": 0.0}
    tails = tail_latencies([1.0, 2.0, 3.0, 4.0])
    assert tails["p50"] <= tails["p95"] <= tails["p99"] <= 4.0


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def test_cli_fleet_exports_byte_identical_json(tmp_path, capsys):
    argv = ["fleet", "--small", "--nodes", "4", "--jobs", "10",
            "--trace", "steady", "--policy", "governor", "--seed", "9"]
    first, second = tmp_path / "a.json", tmp_path / "b.json"
    assert main(argv + ["--export", str(first)]) == 0
    assert main(argv + ["--export", str(second), "--workers", "2"]) == 0
    assert first.read_bytes() == second.read_bytes()
    payload = json.loads(first.read_text())
    assert payload["jobs"] == 10 and payload["nodes"] == 4
    assert "Fleet replay" in capsys.readouterr().out


def test_cli_fleet_slo_gate_exit_codes(tmp_path, capsys):
    argv = ["fleet", "--small", "--nodes", "2", "--jobs", "12",
            "--trace", "burst", "--load", "6.0", "--policy", "governor",
            "--seed", "9"]
    assert main(argv + ["--slo-gate", "1.0"]) == 0
    assert main(argv + ["--slo-gate", "0.0"]) == 1
    out = capsys.readouterr().out
    assert "SLO gate ok" in out and "SLO gate FAILED" in out
