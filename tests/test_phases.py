"""Phase descriptions and phase builders."""

import pytest

from repro.errors import WorkloadError
from repro.gpu.phases import (INSTRUCTION_CLASSES, Phase, balanced_phase,
                              compute_phase, divergent_phase, make_mix,
                              memory_phase)


def test_default_phase_is_valid():
    phase = Phase(name="p", instructions=1000)
    assert phase.memory_fraction == pytest.approx(0.20)


def test_make_mix_fills_int_remainder():
    mix = make_mix(fp32=0.4, load=0.2, store=0.1, branch=0.1)
    assert mix["int"] == pytest.approx(0.2)
    assert sum(mix.values()) == pytest.approx(1.0)


def test_make_mix_rejects_unknown_class():
    with pytest.raises(WorkloadError):
        make_mix(fp128=0.5)


def test_make_mix_rejects_over_unity():
    with pytest.raises(WorkloadError):
        make_mix(fp32=0.8, load=0.4)


def test_make_mix_rejects_negative():
    with pytest.raises(WorkloadError):
        make_mix(fp32=-0.1)


def test_mix_must_sum_to_one():
    bad = {cls: 0.0 for cls in INSTRUCTION_CLASSES}
    bad["fp32"] = 0.5
    with pytest.raises(WorkloadError):
        Phase(name="p", instructions=100, mix=bad)


def test_zero_instructions_rejected():
    with pytest.raises(WorkloadError):
        Phase(name="p", instructions=0)


def test_cpi_below_one_rejected():
    with pytest.raises(WorkloadError):
        Phase(name="p", instructions=100, cpi_exec=0.5)


def test_miss_rate_out_of_range_rejected():
    with pytest.raises(WorkloadError):
        Phase(name="p", instructions=100, l1_miss_rate=1.5)


def test_builders_produce_valid_phases():
    for phase in (compute_phase("c", 1000), memory_phase("m", 1000),
                  balanced_phase("b", 1000), divergent_phase("d", 1000)):
        assert sum(phase.mix.values()) == pytest.approx(1.0)
        assert phase.instructions == 1000


def test_memory_phase_is_more_memory_heavy_than_compute_phase():
    mem = memory_phase("m", 1000)
    cmp_ = compute_phase("c", 1000)
    assert mem.memory_fraction > cmp_.memory_fraction
    assert mem.l1_miss_rate > cmp_.l1_miss_rate


def test_divergent_phase_has_high_branch_fraction():
    div = divergent_phase("d", 1000)
    assert div.branch_fraction > balanced_phase("b", 1000).branch_fraction
    assert div.divergence >= 0.4


def test_scaled_preserves_everything_but_count():
    base = balanced_phase("b", 1000)
    scaled = base.scaled(5000)
    assert scaled.instructions == 5000
    assert scaled.mix == base.mix
    assert scaled.cpi_exec == base.cpi_exec


def test_load_store_fractions_sum_to_memory_fraction():
    phase = memory_phase("m", 1000)
    assert (phase.load_fraction + phase.store_fraction
            == pytest.approx(phase.memory_fraction))
