"""Deterministic named RNG streams."""

from repro.rng import DEFAULT_SEED, StreamFactory, stream


def test_same_name_same_stream():
    a = stream("alpha", seed=42)
    b = stream("alpha", seed=42)
    assert a.random(5).tolist() == b.random(5).tolist()


def test_different_names_differ():
    a = stream("alpha", seed=42)
    b = stream("beta", seed=42)
    assert a.random(5).tolist() != b.random(5).tolist()


def test_different_seeds_differ():
    a = stream("alpha", seed=1)
    b = stream("alpha", seed=2)
    assert a.random(5).tolist() != b.random(5).tolist()


def test_factory_get_is_reproducible():
    factory = StreamFactory(seed=7)
    first = factory.get("jitter").random(3).tolist()
    second = factory.get("jitter").random(3).tolist()
    assert first == second


def test_factory_default_seed():
    assert StreamFactory().seed == DEFAULT_SEED


def test_child_factory_is_namespaced():
    parent = StreamFactory(seed=7)
    child_a = parent.child("a")
    child_b = parent.child("b")
    assert child_a.seed != child_b.seed
    assert (child_a.get("x").random(3).tolist()
            != child_b.get("x").random(3).tolist())


def test_child_factory_deterministic():
    a = StreamFactory(seed=7).child("sub").get("x").random(4).tolist()
    b = StreamFactory(seed=7).child("sub").get("x").random(4).tolist()
    assert a == b
