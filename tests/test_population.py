"""Population training engine: lockstep batches vs the serial trainer."""

import numpy as np
import pytest

from repro.errors import ModelError, TrainingError
from repro.nn.compress import (ArchitectureSpec, SplitData, train_pair,
                               train_pair_replicas)
from repro.nn.mlp import MLP
from repro.nn.metrics import accuracy
from repro.nn.population import (PopulationMLP, fit_population,
                                 train_population_classifier,
                                 train_population_regressor)
from repro.nn.trainer import TrainConfig, train_classifier, train_regressor
from repro.parallel import CampaignStats


def _classification_data(n=96, width=5, classes=4, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, width))
    y = (x.sum(axis=1) > 0).astype(np.int64) + rng.integers(
        0, classes - 1, size=n)
    return x, np.clip(y, 0, classes - 1)


def _regression_data(n=96, width=5, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, width))
    y = x @ rng.normal(size=width) + 0.1 * rng.normal(size=n)
    return x, y


def _serial_histories(layer_sizes, seeds, x, y, config, trainer):
    models, histories = [], []
    for seed in seeds:
        model = MLP(layer_sizes, rng=np.random.default_rng(seed))
        histories.append(trainer(model, x, y, config))
        models.append(model)
    return models, histories


def _assert_matches_serial(population, histories, models, serial_histories):
    for index, (history, serial) in enumerate(zip(histories,
                                                  serial_histories)):
        np.testing.assert_allclose(history.train_losses,
                                   serial.train_losses, atol=1e-9)
        np.testing.assert_allclose(history.val_losses, serial.val_losses,
                                   atol=1e-9)
        assert history.best_epoch == serial.best_epoch
        assert history.stopped_early == serial.stopped_early
        assert history.epochs_run == serial.epochs_run
        member = population.member(index)
        for got, want in zip(member.layers, models[index].layers):
            np.testing.assert_allclose(got.weights, want.weights, atol=1e-9)
            np.testing.assert_allclose(got.bias, want.bias, atol=1e-9)


def test_classifier_matches_serial_shared_data():
    """Same config.seed for every member -> shared-split fast path."""
    x, y = _classification_data()
    seeds = [10, 11, 12, 13]
    config = TrainConfig(epochs=25, patience=5, learning_rate=3e-3, seed=7)
    layer_sizes = [x.shape[1], 16, 16, 4]
    population = PopulationMLP.replicate(layer_sizes, seeds)
    histories = train_population_classifier(population, x, y, config)
    models, serial = _serial_histories(layer_sizes, seeds, x, y, config,
                                       train_classifier)
    _assert_matches_serial(population, histories, models, serial)
    for index, model in enumerate(models):
        pop_acc = accuracy(population.member(index).predict_class(x), y)
        serial_acc = accuracy(model.predict_class(x), y)
        assert abs(pop_acc - serial_acc) <= 1e-6


def test_regressor_matches_serial_per_member_seeds():
    """Distinct data seeds exercise the stacked per-member split path,
    plus SGD + weight decay + gradient clipping + the lr schedule."""
    x, y = _regression_data()
    seeds = [3, 4, 5]
    config = TrainConfig(epochs=18, patience=4, learning_rate=5e-3,
                         optimizer="sgd", weight_decay=1e-4,
                         gradient_clip=1.0, lr_decay=0.5, lr_step=5)
    layer_sizes = [x.shape[1], 12, 1]
    population = PopulationMLP.replicate(layer_sizes, seeds)
    histories = train_population_regressor(population, x, y, config,
                                           seeds=seeds)
    models, serial = [], []
    for seed in seeds:
        model = MLP(layer_sizes, rng=np.random.default_rng(seed))
        member_config = TrainConfig(
            epochs=config.epochs, patience=config.patience,
            learning_rate=config.learning_rate, optimizer="sgd",
            weight_decay=config.weight_decay,
            gradient_clip=config.gradient_clip, lr_decay=config.lr_decay,
            lr_step=config.lr_step, seed=seed)
        serial.append(train_regressor(model, x, y, member_config))
        models.append(model)
    _assert_matches_serial(population, histories, models, serial)


def test_reproducible_run_to_run():
    x, y = _classification_data()
    config = TrainConfig(epochs=10, patience=3, seed=1)

    def run():
        population = PopulationMLP.replicate([x.shape[1], 8, 4], [5, 6])
        train_population_classifier(population, x, y, config)
        return [layer.weights.copy() for layer in population.layers]

    first, second = run(), run()
    for a, b in zip(first, second):
        assert np.array_equal(a, b)


def test_member_extraction_is_standalone():
    population = PopulationMLP.replicate([5, 8, 3], [0, 1])
    member = population.member(0)
    original = member.layers[0].weights.copy()
    population.layers[0].weights[0] += 1.0
    assert np.array_equal(member.layers[0].weights, original)
    assert member.layer_sizes == [5, 8, 3]
    assert len(population.members()) == 2


def test_from_models_rejects_shape_mismatch():
    a = MLP([5, 8, 3], rng=np.random.default_rng(0))
    b = MLP([5, 6, 3], rng=np.random.default_rng(1))
    with pytest.raises(ModelError):
        PopulationMLP.from_models([a, b])
    with pytest.raises(ModelError):
        PopulationMLP.from_models([])


def test_fit_population_validation():
    population = PopulationMLP.replicate([5, 8, 3], [0, 1])
    x, y = _classification_data(width=5)
    with pytest.raises(TrainingError):
        fit_population(population, x, y, "nonsense")
    with pytest.raises(TrainingError):
        fit_population(population, x, y, "classifier", seeds=[1, 2, 3])
    with pytest.raises(TrainingError):
        fit_population(population, x[:, :4], y, "classifier")
    with pytest.raises(TrainingError):
        fit_population(population, x[:1], y[:1], "classifier")


def test_train_pair_replicas_matches_serial_train_pair():
    xd, yd = _classification_data(seed=2)
    xr, yr = _regression_data(seed=3)
    decision_data = SplitData(xd[:72], yd[:72], xd[72:], yd[72:])
    calibrator_data = SplitData(xr[:72], yr[:72], xr[72:], yr[72:])
    spec = ArchitectureSpec((10, 10), (8,))
    config = TrainConfig(epochs=15, patience=4, seed=9)
    stats = CampaignStats()
    replicas = train_pair_replicas(spec, decision_data, calibrator_data,
                                   num_levels=4, config=config,
                                   seeds=(20, 21, 22), stats=stats)
    assert len(replicas) == 3
    assert stats.counters["train_models"] == 6
    assert stats.counters["train_epochs"] > 0
    for seed, replica in zip((20, 21, 22), replicas):
        serial = train_pair(spec, decision_data, calibrator_data,
                            num_levels=4, config=config, seed=seed)
        assert abs(replica.accuracy_pct - serial.accuracy_pct) <= 1e-6
        assert abs(replica.mape_pct - serial.mape_pct) <= 1e-6
        assert replica.epochs_run == serial.epochs_run
