"""Chaos soak: self-healing, invariants, reproducibility, CLI gate."""

import json

import pytest

from repro.cli import main
from repro.core.combined import SSMDVFSModel
from repro.errors import PolicyError
from repro.evaluation.soak import (SOAK_ARTIFACT, SoakConfig, SoakResult,
                                   run_soak)
from repro.gpu.kernels import KernelProfile
from repro.gpu.phases import balanced_phase, compute_phase
from repro.store import ArtifactStore
from repro.workloads.suites import scale_kernel_to_duration


@pytest.fixture(scope="module")
def soak_kernels(small_arch):
    kernels = [
        KernelProfile("s.compute", [compute_phase("c", 150_000, warps=16)],
                      iterations=8, jitter=0.06),
        KernelProfile("s.balanced", [balanced_phase("b", 150_000)],
                      iterations=8, jitter=0.06),
    ]
    return [scale_kernel_to_duration(k, small_arch, 1000e-6)
            for k in kernels]


@pytest.fixture(scope="module")
def soak_result(small_pipeline, small_arch, soak_kernels, tmp_path_factory):
    model = small_pipeline.models["base"]
    root = tmp_path_factory.mktemp("soak-store")
    config = SoakConfig(seed=7, crash_write_trials=8)
    return run_soak(model, soak_kernels, small_arch, root, config), root


def test_soak_config_validates():
    with pytest.raises(PolicyError):
        SoakConfig(stale_fraction=0.0)
    with pytest.raises(PolicyError):
        SoakConfig(stale_sigma=-1.0)
    with pytest.raises(PolicyError):
        SoakConfig(recovery_epochs=0)


def test_soak_invariants_hold_and_heal(soak_result):
    result, _ = soak_result
    assert result.passed, result.violations
    assert len(result.records) == 2
    for record in result.records:
        # Self-healing demonstrated: the injected staleness was
        # detected and rolled back within the budget.
        assert record.alarm_epoch is not None
        assert record.alarm_epoch >= record.stale_epoch
        assert record.healed_epoch is not None
        assert record.healed_by == "hot_swap"
        assert record.invalid_decisions == 0
        assert record.normalized_latency <= result.latency_tolerance
    assert result.crash_trials > 0
    assert result.crash_torn_reads == 0
    assert result.counters.get("rollback_hot_swaps", 0) >= 2
    assert result.counters.get("drift_alarms", 0) >= 2


def test_soak_seeds_registry_with_trusted_pair(soak_result, small_pipeline):
    _, root = soak_result
    store = ArtifactStore(root)
    assert store.last_known_good(SOAK_ARTIFACT) == 1
    blob = store.get(SOAK_ARTIFACT)
    restored = SSMDVFSModel.from_bytes(blob)
    assert restored.verify()
    # The soak drove a copy: the registry pair is the pristine one.
    assert blob == small_pipeline.models["base"].to_bytes()


def test_soak_is_seed_reproducible(small_pipeline, small_arch, soak_kernels,
                                   soak_result, tmp_path):
    first, _ = soak_result
    again = run_soak(small_pipeline.models["base"], soak_kernels, small_arch,
                     tmp_path, SoakConfig(seed=7, crash_write_trials=8))
    assert (json.dumps(first.to_payload(), sort_keys=True)
            == json.dumps(again.to_payload(), sort_keys=True))


def test_soak_tiny_recovery_budget_reports_violation(small_pipeline,
                                                     small_arch,
                                                     soak_kernels, tmp_path):
    config = SoakConfig(seed=7, recovery_epochs=1, crash_write_trials=0)
    result = run_soak(small_pipeline.models["base"], soak_kernels[:1],
                      small_arch, tmp_path, config)
    assert not result.passed
    assert any("recovery took" in violation
               for violation in result.violations)


def test_soak_export_and_render(soak_result, tmp_path):
    result, _ = soak_result
    path = result.export_json(tmp_path / "soak.json")
    payload = json.loads(path.read_text())
    assert payload["passed"] is True
    assert payload["crash_torn_reads"] == 0
    assert len(payload["records"]) == 2
    text = result.render()
    assert "all soak invariants held" in text
    assert "hot_swap" in text


def test_soak_result_failure_render_lists_violations():
    result = SoakResult(preset=0.1, latency_tolerance=1.25, seed=0,
                        violations=["k: something broke"])
    assert not result.passed
    assert "INVARIANT VIOLATIONS" in result.render()


def test_store_cli_inspects_and_rolls_back(soak_result, capsys):
    _, root = soak_result
    store = ArtifactStore(root)
    store.put(SOAK_ARTIFACT, store.get(SOAK_ARTIFACT), mark_good=True)
    assert main(["store", "--root", str(root), "--verify", "all"]) == 0
    out = capsys.readouterr().out
    assert "ok" in out and SOAK_ARTIFACT in out
    assert main(["store", "--root", str(root),
                 "--rollback", SOAK_ARTIFACT]) == 0
    out = capsys.readouterr().out
    assert "last_known_good -> v1" in out
    assert store.last_known_good(SOAK_ARTIFACT) == 1


def test_store_cli_rollback_without_older_version_fails_cleanly(tmp_path,
                                                                capsys):
    store = ArtifactStore(tmp_path)
    store.put("pair", b"only-version", mark_good=True)
    assert main(["store", "--root", str(tmp_path),
                 "--rollback", "pair"]) == 1
    assert "rollback failed" in capsys.readouterr().out
    assert store.last_known_good("pair") == 1
