"""SSMDVFS runtime controller and reference policies."""

import pytest

from repro.errors import PolicyError
from repro.gpu.kernels import KernelProfile
from repro.gpu.phases import compute_phase, memory_phase
from repro.gpu.simulator import GPUSimulator
from repro.power.model import PowerModel
from repro.core.controller import SSMDVFSController
from repro.core.policy import ModelOraclePolicy, StaticPolicy


def _kernel(kind="memory", iterations=20):
    phase = (memory_phase("m", 120_000, warps=48, l1_miss=0.9, l2_miss=0.9)
             if kind == "memory" else compute_phase("c", 120_000, warps=16))
    return KernelProfile(f"ctl.{kind}", [phase], iterations=iterations,
                         jitter=0.05)


def _run(policy, arch, kernel, seed=3):
    sim = GPUSimulator(arch, kernel, PowerModel(), seed=seed)
    return sim.run(policy, keep_records=True)


def test_controller_validation(small_pipeline):
    model = small_pipeline.model("base")
    with pytest.raises(PolicyError):
        SSMDVFSController(model, preset=-0.1)
    with pytest.raises(PolicyError):
        SSMDVFSController(model, preset=0.1, gain=-1)
    with pytest.raises(PolicyError):
        SSMDVFSController(model, preset=0.1, relax=1.5)


def test_controller_name_encodes_configuration(small_pipeline):
    model = small_pipeline.model("base")
    assert SSMDVFSController(model, 0.10).name == "ssmdvfs-p10"
    assert (SSMDVFSController(model, 0.20, use_calibrator=False).name
            == "ssmdvfs-nocal-p20")


def test_controller_runs_memory_kernel_at_low_levels(small_pipeline,
                                                     small_arch):
    """A strongly memory-bound kernel should be driven below default."""
    model = small_pipeline.model("base")
    controller = SSMDVFSController(model, preset=0.10)
    result = _run(controller, small_arch, _kernel("memory"))
    levels = [lvl for r in result.records for lvl in r.levels]
    assert min(levels) < small_arch.vf_table.default_level


def test_controller_latency_within_slack_on_compute(small_pipeline,
                                                    small_arch):
    """On a compute-bound kernel the controller must not blow far past
    the preset (calibrator keeps it honest)."""
    model = small_pipeline.model("base")
    kernel = _kernel("compute")
    base = _run(StaticPolicy(small_arch.vf_table.default_level),
                small_arch, kernel)
    controlled = _run(SSMDVFSController(model, preset=0.10), small_arch,
                      kernel)
    latency = controlled.time_s / base.time_s
    assert latency < 1.25  # preset 10 % plus bounded overshoot


def test_preset_trace_stays_in_bounds(small_pipeline, small_arch):
    model = small_pipeline.model("base")
    controller = SSMDVFSController(model, preset=0.10)
    _run(controller, small_arch, _kernel("compute"))
    trace = controller.preset_trace
    assert trace, "controller never recorded its working preset"
    assert all(0.0 <= p <= 0.10 + 1e-9 for p in trace)


def test_calibrate_tightens_when_prediction_exceeds_actual(small_pipeline,
                                                           small_arch):
    """The §III-C mechanism: predicted > actual means the core runs
    slower than promised, so the working preset must shrink."""
    model = small_pipeline.model("base")
    controller = SSMDVFSController(model, preset=0.10, gain=1.0)
    sim = GPUSimulator(small_arch, _kernel("compute"), PowerModel(), seed=1)
    controller.reset(sim)
    record = sim.step_epoch()
    actuals = [c["inst_total"] for c in record.cluster_counters]
    # Promise 50 % more than reality for every cluster.
    controller._pending = [(i, a * 1.5) for i, a in enumerate(actuals)]
    controller._calibrate(record)
    assert controller.working_preset < 0.10

    # And the opposite direction relaxes back toward the user preset.
    tightened = controller.working_preset
    controller._cumulative_predicted = 0.0
    controller._cumulative_actual = 0.0
    controller._pending = [(i, a * 0.5) for i, a in enumerate(actuals)]
    controller._calibrate(record)
    assert controller.working_preset > tightened
    assert controller.working_preset <= 0.10


def test_no_calibrator_keeps_preset_fixed(small_pipeline, small_arch):
    model = small_pipeline.model("base")
    controller = SSMDVFSController(model, preset=0.10, use_calibrator=False)
    _run(controller, small_arch, _kernel("compute"))
    assert all(p == pytest.approx(0.10) for p in controller.preset_trace)


def test_controller_reset_between_runs(small_pipeline, small_arch):
    model = small_pipeline.model("base")
    controller = SSMDVFSController(model, preset=0.10)
    _run(controller, small_arch, _kernel("compute"))
    first_trace = list(controller.preset_trace)
    _run(controller, small_arch, _kernel("compute"))
    assert controller.preset_trace == first_trace  # deterministic reset


def test_static_policy_pins_level(small_arch):
    result = _run(StaticPolicy(2), small_arch, _kernel("memory"))
    assert all(set(r.levels) == {2} for r in result.records)


def test_static_policy_validates_level(small_arch):
    policy = StaticPolicy(99)
    sim = GPUSimulator(small_arch, _kernel("memory"), PowerModel(), seed=1)
    with pytest.raises(PolicyError):
        policy.reset(sim)


def test_oracle_policy_saves_energy_on_memory_kernel(small_arch):
    # On the 2-cluster test GPU, frequency-invariant DRAM/L2 traffic
    # energy dominates a memory kernel's budget, so the achievable core
    # saving is a few percent (the 24-cluster config shows 20 %+).
    kernel = _kernel("memory")
    base = _run(StaticPolicy(small_arch.vf_table.default_level), small_arch,
                kernel)
    oracle = _run(ModelOraclePolicy(preset=0.10), small_arch, kernel)
    assert oracle.energy_j < base.energy_j * 0.96
    assert oracle.time_s < base.time_s * 1.12


def test_oracle_policy_respects_preset_on_compute(small_arch):
    kernel = _kernel("compute")
    base = _run(StaticPolicy(small_arch.vf_table.default_level), small_arch,
                kernel)
    oracle = _run(ModelOraclePolicy(preset=0.10), small_arch, kernel)
    assert oracle.time_s / base.time_s < 1.13


def test_oracle_validation():
    with pytest.raises(PolicyError):
        ModelOraclePolicy(preset=-0.1)
