"""Package hygiene: public API surface, docstrings, exports."""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = ["repro", "repro.gpu", "repro.gpu.detailed", "repro.power",
            "repro.workloads", "repro.nn", "repro.datagen", "repro.core",
            "repro.baselines", "repro.hardware", "repro.evaluation",
            "repro.fleet", "repro.serve"]


def _walk_modules():
    modules = []
    for name in PACKAGES:
        package = importlib.import_module(name)
        modules.append(package)
        for info in pkgutil.iter_modules(package.__path__,
                                         prefix=name + "."):
            modules.append(importlib.import_module(info.name))
    return modules


def test_every_module_imports_and_is_documented():
    for module in _walk_modules():
        assert module.__doc__ and module.__doc__.strip(), module.__name__


def test_every_package_all_resolves():
    for name in PACKAGES:
        package = importlib.import_module(name)
        exported = getattr(package, "__all__", [])
        for symbol in exported:
            assert hasattr(package, symbol), f"{name}.{symbol}"


def test_public_classes_and_functions_documented():
    """Every public item re-exported by a package has a docstring."""
    undocumented = []
    for name in PACKAGES:
        package = importlib.import_module(name)
        for symbol in getattr(package, "__all__", []):
            obj = getattr(package, symbol)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (obj.__doc__ and obj.__doc__.strip()):
                    undocumented.append(f"{name}.{symbol}")
    assert not undocumented, undocumented


def test_public_methods_documented():
    """Public methods of public classes carry docstrings."""
    undocumented = []
    for name in PACKAGES:
        package = importlib.import_module(name)
        for symbol in getattr(package, "__all__", []):
            obj = getattr(package, symbol)
            if not inspect.isclass(obj):
                continue
            for method_name, method in inspect.getmembers(
                    obj, inspect.isfunction):
                if method_name.startswith("_"):
                    continue
                if method.__qualname__.split(".")[0] != obj.__name__:
                    continue  # inherited elsewhere
                if not (method.__doc__ and method.__doc__.strip()):
                    undocumented.append(
                        f"{name}.{symbol}.{method_name}")
    assert not undocumented, undocumented


def test_version_exposed():
    assert repro.__version__
    parts = repro.__version__.split(".")
    assert len(parts) >= 2
    assert all(part.isdigit() for part in parts)


def test_errors_hierarchy():
    from repro import errors
    for name in dir(errors):
        obj = getattr(errors, name)
        if inspect.isclass(obj) and issubclass(obj, Exception) \
                and obj is not Exception:
            assert issubclass(obj, errors.ReproError) \
                or obj is errors.ReproError
