"""Data-generation protocol (paper §III-A)."""

import pytest

from repro.errors import DatasetError
from repro.gpu.arch import small_test_config
from repro.gpu.kernels import KernelProfile
from repro.gpu.phases import compute_phase, memory_phase
from repro.datagen.protocol import (ProtocolConfig, generate_for_kernel,
                                    generate_for_suite, required_duration_s,
                                    scale_kernel_for_protocol)

ARCH = small_test_config(num_clusters=2)


def _kernel(compute=True, iterations=60):
    phase = (compute_phase("c", 30_000, warps=16) if compute
             else memory_phase("m", 30_000, l1_miss=0.8, l2_miss=0.8))
    return KernelProfile(name=f"proto.{'c' if compute else 'm'}",
                         phases=[phase], iterations=iterations, jitter=0.05)


CFG = ProtocolConfig(max_breakpoints_per_kernel=2, seed=1)


def test_config_validation():
    with pytest.raises(DatasetError):
        ProtocolConfig(epoch_s=0)
    with pytest.raises(DatasetError):
        ProtocolConfig(segment_epochs=2)
    with pytest.raises(DatasetError):
        ProtocolConfig(max_breakpoints_per_kernel=0)


def test_generates_requested_breakpoints():
    breakpoints = generate_for_kernel(_kernel(), ARCH, config=CFG)
    assert len(breakpoints) == 2
    assert [bp.breakpoint_index for bp in breakpoints] == [0, 1]


def test_every_breakpoint_covers_all_levels():
    breakpoints = generate_for_kernel(_kernel(), ARCH, config=CFG)
    for bp in breakpoints:
        assert bp.levels == list(range(ARCH.vf_table.num_levels))
        assert len(bp.losses) == len(bp.levels)
        assert len(bp.window_instructions) == len(bp.levels)


def test_default_level_loss_is_zero():
    breakpoints = generate_for_kernel(_kernel(), ARCH, config=CFG)
    default = ARCH.vf_table.default_level
    for bp in breakpoints:
        assert bp.losses[default] == pytest.approx(0.0, abs=1e-9)


def test_compute_kernel_losses_decrease_with_level():
    """For a compute-bound kernel, slower points cost more."""
    breakpoints = generate_for_kernel(_kernel(compute=True), ARCH, config=CFG)
    for bp in breakpoints:
        assert bp.losses[0] > bp.losses[3] > bp.losses[5] - 1e-9
        assert bp.losses[0] > 0.2  # min level hurts a compute kernel


def test_memory_kernel_is_insensitive():
    breakpoints = generate_for_kernel(_kernel(compute=False), ARCH, config=CFG)
    for bp in breakpoints:
        assert bp.losses[0] < 0.12


def test_window_instructions_scale_with_level_on_compute():
    breakpoints = generate_for_kernel(_kernel(compute=True), ARCH, config=CFG)
    for bp in breakpoints:
        assert bp.window_instructions[0] < bp.window_instructions[5]


def test_segment_losses_are_window_losses_scaled():
    breakpoints = generate_for_kernel(_kernel(), ARCH, config=CFG)
    for bp in breakpoints:
        for window, segment in zip(bp.losses, bp.segment_losses):
            # loss_window = excess / epoch; loss_segment = excess / t0.
            assert window == pytest.approx(
                segment * bp.t0_s / CFG.epoch_s, rel=1e-6, abs=1e-9)


def test_minimal_level_for_preset_monotone_in_preset():
    breakpoints = generate_for_kernel(_kernel(compute=True), ARCH, config=CFG)
    for bp in breakpoints:
        assert (bp.minimal_level_for_preset(0.05)
                >= bp.minimal_level_for_preset(0.20))


def test_required_duration_and_scaling():
    config = ProtocolConfig(max_breakpoints_per_kernel=4)
    needed = required_duration_s(config)
    assert needed == pytest.approx((4 + 3) * 10 * config.epoch_s)
    short = _kernel(iterations=2)
    scaled = scale_kernel_for_protocol(short, ARCH, config)
    assert scaled.iterations > short.iterations


def test_generate_for_suite_autoscales_short_kernels():
    short = _kernel(iterations=2)
    breakpoints = generate_for_suite([short], ARCH, config=CFG)
    assert len(breakpoints) == CFG.max_breakpoints_per_kernel


def test_generate_for_suite_rejects_empty():
    with pytest.raises(DatasetError):
        generate_for_suite([], ARCH, config=CFG)
