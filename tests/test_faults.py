"""Fault injection and the guarded controller: sanitize, trip, recover."""

import math

import numpy as np
import pytest

from repro.baselines.governor import UtilizationGovernor
from repro.cli import main
from repro.core.controller import SSMDVFSController
from repro.core.guarded import ACTIVE, FALLBACK, PROBATION, GuardedController
from repro.core.policy import StaticPolicy, validate_decision
from repro.errors import FaultInjectionError, GuardTripped, PolicyError
from repro.evaluation.robustness import fault_sweep
from repro.faults import (FAULT_MODES, FaultConfig, FaultyPolicy,
                          build_faulty_policy, config_for_mode,
                          derive_fault_seed)
from repro.gpu.counters import CounterSet
from repro.gpu.kernels import KernelProfile
from repro.gpu.phases import balanced_phase
from repro.gpu.simulator import GPUSimulator
from repro.parallel import CampaignStats


def _kernel(iterations=8):
    return KernelProfile("f.balanced", [balanced_phase("b", 120_000)],
                         iterations=iterations, jitter=0.05)


def _run(arch, policy, seed=0, iterations=8):
    simulator = GPUSimulator(arch, _kernel(iterations), seed=seed)
    return simulator.run(policy, keep_records=False)


# ---------------------------------------------------------------------------
# FaultConfig
# ---------------------------------------------------------------------------

def test_fault_config_validates_rates():
    with pytest.raises(FaultInjectionError):
        FaultConfig(counter_nan=1.5)
    with pytest.raises(FaultInjectionError):
        FaultConfig(actuation_drop=-0.1)
    with pytest.raises(FaultInjectionError):
        FaultConfig(spike_magnitude=0.0)
    assert not FaultConfig().any_active
    assert FaultConfig(counter_nan=0.1).any_active
    assert FaultConfig(seed=1).with_seed(9).seed == 9


def test_config_for_mode_covers_every_mode():
    for mode in FAULT_MODES:
        config = config_for_mode(mode, 0.3, seed=2)
        assert config.any_active
        assert config.seed == 2
    with pytest.raises(FaultInjectionError):
        config_for_mode("gamma-rays", 0.3)


# ---------------------------------------------------------------------------
# FaultyPolicy injection behaviour
# ---------------------------------------------------------------------------

def test_fault_injection_is_deterministic_per_seed(small_arch):
    def run_with(seed):
        policy = FaultyPolicy(StaticPolicy(2),
                              FaultConfig(counter_nan=0.3, seed=seed))
        result = _run(small_arch, policy)
        return result.time_s, result.energy_j, dict(policy.counts)

    assert run_with(5) == run_with(5)
    assert run_with(5)[2] != run_with(6)[2]


def test_fault_streams_are_independent_per_run(small_arch):
    # One FaultConfig fanned over a campaign must not replay the same
    # fault sequence in every task: the stream seed mixes in the run
    # identity (workload name, simulator seed) while staying stable
    # for the same run.
    config = FaultConfig(counter_dropout=0.5, seed=7)

    def stream(name, seed):
        kernel = KernelProfile(name, [balanced_phase("b", 50_000)],
                               iterations=2)
        simulator = GPUSimulator(small_arch, kernel, seed=seed)
        policy = FaultyPolicy(StaticPolicy(3), config)
        policy.reset(simulator)
        return policy._rng.random(16).tolist()

    assert stream("k.same", 0) == stream("k.same", 0)
    assert stream("k.one", 0) != stream("k.two", 0)
    assert stream("k.one", 0) != stream("k.one", 1)


def test_derive_fault_seed_is_stable_and_identity_sensitive():
    assert derive_fault_seed(7, "k.a", 0) == derive_fault_seed(7, "k.a", 0)
    assert derive_fault_seed(7, "k.a", 0) != derive_fault_seed(7, "k.b", 0)
    assert derive_fault_seed(7, "k.a", 0) != derive_fault_seed(8, "k.a", 0)


def test_dropout_zeroes_whole_windows(small_arch):
    policy = FaultyPolicy(StaticPolicy(2),
                          FaultConfig(counter_dropout=1.0, seed=0))
    simulator = GPUSimulator(small_arch, _kernel(), seed=0)
    policy.reset(simulator)
    record = simulator.step_epoch()
    corrupted = policy.corrupt_record(record)
    for counters in corrupted.cluster_counters:
        assert not np.any(counters.as_vector())
    assert policy.counts["fault_counter_dropout"] == len(
        corrupted.cluster_counters)


def test_stuck_counters_redeliver_previous_epoch(small_arch):
    policy = FaultyPolicy(StaticPolicy(2),
                          FaultConfig(counter_stuck=1.0, seed=0))
    simulator = GPUSimulator(small_arch, _kernel(), seed=0)
    policy.reset(simulator)
    first = policy.corrupt_record(simulator.step_epoch())
    second = policy.corrupt_record(simulator.step_epoch())
    for before, after in zip(first.cluster_counters,
                             second.cluster_counters):
        assert np.array_equal(before.as_vector(), after.as_vector())
    assert policy.counts["fault_counter_stuck"] == len(
        second.cluster_counters)


def test_nan_and_spike_faults_mark_counters(small_arch):
    policy = FaultyPolicy(StaticPolicy(2),
                          FaultConfig(counter_nan=0.5, counter_spike=0.5,
                                      seed=3))
    simulator = GPUSimulator(small_arch, _kernel(), seed=0)
    policy.reset(simulator)
    corrupted = policy.corrupt_record(simulator.step_epoch())
    vector = np.concatenate([c.as_vector()
                             for c in corrupted.cluster_counters])
    assert np.isnan(vector).any()
    assert policy.counts["fault_counter_nan"] > 0
    assert policy.counts["fault_counter_spike"] > 0


def test_actuation_drop_holds_previous_levels(small_arch):
    policy = FaultyPolicy(StaticPolicy(3),
                          FaultConfig(actuation_drop=1.0, seed=0))
    simulator = GPUSimulator(small_arch, _kernel(), seed=0)
    policy.reset(simulator)
    record = simulator.step_epoch()
    decision = policy.decide(record)
    assert decision == list(record.levels)  # never reaches level 3
    assert policy.counts["fault_actuation_drop"] == 1


def test_faulted_run_completes_for_every_mode(small_arch):
    for mode in FAULT_MODES:
        policy = build_faulty_policy(UtilizationGovernor,
                                     config_for_mode(mode, 0.5, seed=1))
        result = _run(small_arch, policy)
        assert result.epochs > 0
        assert math.isfinite(result.time_s) and math.isfinite(result.energy_j)


# ---------------------------------------------------------------------------
# Decision validation
# ---------------------------------------------------------------------------

def test_validate_decision_accepts_scalar_and_sequence():
    assert validate_decision(2, 6, 3) == [2, 2, 2]
    assert validate_decision([0, 5, 3], 6, 3) == [0, 5, 3]
    assert validate_decision(np.int64(4), 6, 2) == [4, 4]


def test_validate_decision_rejects_malformed_output():
    for bad in ([1, 2], [1, 2, 9], [1, 2, float("nan")], [1, 2, 2.5],
                [1, 2, "x"], [1, 2, -1]):
        with pytest.raises(PolicyError):
            validate_decision(bad, 6, 3)


# ---------------------------------------------------------------------------
# GuardedController
# ---------------------------------------------------------------------------

def test_guard_sanitizes_counters_before_inner_policy(small_arch):
    seen = []

    class Spy(StaticPolicy):
        def decide(self, record):
            seen.append(record)
            return super().decide(record)

    guard = GuardedController(Spy(2), trip_threshold=1000)
    simulator = GPUSimulator(small_arch, _kernel(), seed=0)
    guard.reset(simulator)
    record = simulator.step_epoch()
    vector = record.cluster_counters[0].as_vector()
    vector[0] = float("nan")
    vector[1] = -5.0
    vector[2] = 1e30
    record.cluster_counters[0] = CounterSet.from_vector(vector)
    guard.decide(record)
    observed = seen[-1].cluster_counters[0].as_vector()
    assert np.isfinite(observed).all()
    assert (observed >= 0).all()
    assert observed.max() <= guard.max_counter_value
    counters = guard.observability_counters()
    assert counters["guard_counter_nonfinite"] == 1
    assert counters["guard_counter_negative"] == 1
    assert counters["guard_counter_clamped"] == 1


def test_guard_trips_to_fallback_and_recovers(small_arch):
    guard = GuardedController(StaticPolicy(2), trip_threshold=2,
                              fallback_epochs=3, probation_epochs=2)
    simulator = GPUSimulator(small_arch, _kernel(), seed=0)
    guard.reset(simulator)

    def nan_record():
        record = simulator.step_epoch()
        for index, counters in enumerate(record.cluster_counters):
            vector = counters.as_vector()
            vector[:] = float("nan")
            record.cluster_counters[index] = CounterSet.from_vector(vector)
        return record

    fallback = [guard._fallback_level] * len(simulator.clusters)
    # Two anomalous epochs trip the guard; fallback decision from then on.
    guard.decide(nan_record())
    assert guard.state == ACTIVE
    assert guard.decide(nan_record()) == fallback
    assert guard.state == FALLBACK
    counters = guard.observability_counters()
    assert counters["guard_trips"] == 1
    # Clean epochs: serve out fallback, pass probation, recover.
    states = []
    for _ in range(6):
        guard.decide(simulator.step_epoch())
        states.append(guard.state)
    assert PROBATION in states
    assert guard.state == ACTIVE
    assert guard.observability_counters()["guard_recoveries"] == 1


def test_guard_probation_relapse_returns_to_fallback(small_arch):
    guard = GuardedController(StaticPolicy(2), trip_threshold=1,
                              fallback_epochs=1, probation_epochs=5)
    simulator = GPUSimulator(small_arch, _kernel(), seed=0)
    guard.reset(simulator)

    def zero_record():
        record = simulator.step_epoch()
        for index in range(len(record.cluster_counters)):
            record.cluster_counters[index] = CounterSet()
        return record

    guard.decide(zero_record())  # trip (dropout anomaly, threshold 1)
    assert guard.state == FALLBACK
    guard.decide(simulator.step_epoch())  # fallback window ends
    assert guard.state == PROBATION
    guard.decide(zero_record())  # anomaly during probation
    assert guard.state == FALLBACK
    assert guard.observability_counters()["guard_probation_failures"] == 1


def test_guard_contains_inner_policy_exceptions(small_arch):
    class Exploding(StaticPolicy):
        def decide(self, record):
            raise RuntimeError("model blew up")

    guard = GuardedController(Exploding(2), trip_threshold=3)
    simulator = GPUSimulator(small_arch, _kernel(), seed=0)
    result = simulator.run(guard, keep_records=False)
    assert result.epochs > 0
    counters = guard.observability_counters()
    assert counters["guard_policy_error"] > 0
    assert counters["guard_trips"] >= 1


def test_guard_rejects_invalid_decisions(small_arch):
    class Malformed(StaticPolicy):
        def decide(self, record):
            return [99] * len(self.simulator.clusters)

    guard = GuardedController(Malformed(2), trip_threshold=2)
    simulator = GPUSimulator(small_arch, _kernel(), seed=0)
    result = simulator.run(guard, keep_records=False)
    assert result.epochs > 0
    assert guard.observability_counters()["guard_decision_invalid"] > 0


def test_strict_guard_raises_instead_of_degrading(small_arch):
    policy = FaultyPolicy(
        GuardedController(StaticPolicy(2), trip_threshold=2, strict=True),
        FaultConfig(counter_dropout=1.0, seed=0))
    simulator = GPUSimulator(small_arch, _kernel(), seed=0)
    with pytest.raises(GuardTripped):
        simulator.run(policy, keep_records=False)


def test_total_sensor_dropout_engages_fallback(small_arch):
    """The CI smoke assertion: 100 % dropout must degrade, not crash."""
    policy = build_faulty_policy(UtilizationGovernor,
                                 config_for_mode("dropout", 1.0, seed=1))
    result = _run(small_arch, policy)
    assert result.epochs > 0
    counters = policy.observability_counters()
    assert counters["guard_trips"] >= 1
    assert counters["guard_fallback_epochs"] > 0


def test_guarded_controller_survives_calibrator_nan(small_arch,
                                                    small_pipeline,
                                                    monkeypatch):
    model = small_pipeline.models["base"]

    def nan_batch(counters, levels):
        return [float("nan")] * len(levels)

    # Poison the (session-shared) calibrator for this test only.
    monkeypatch.setattr(model.calibrator, "predict_instructions_batch",
                        nan_batch)

    controller = SSMDVFSController(model, preset=0.10)
    guard = GuardedController(controller)
    result = _run(small_arch, guard)
    assert result.epochs > 0
    counters = guard.observability_counters()
    assert counters["calibration_anomalies"] > 0
    assert math.isfinite(controller.working_preset)


def test_controller_log_bias_survives_spiked_counters(small_arch,
                                                      small_pipeline):
    model = small_pipeline.models["base"]
    controller = SSMDVFSController(model, preset=0.10)
    policy = FaultyPolicy(GuardedController(controller),
                          FaultConfig(counter_spike=0.4,
                                      spike_magnitude=1e9, seed=2))
    result = _run(small_arch, policy)
    assert result.epochs > 0
    assert math.isfinite(controller.working_preset)
    assert abs(controller._log_bias) <= 30.0


# ---------------------------------------------------------------------------
# fault_sweep campaign + CLI
# ---------------------------------------------------------------------------

def test_fault_sweep_reports_cells_and_counters(small_arch):
    stats = CampaignStats()
    result = fault_sweep({"static": lambda: StaticPolicy(2)},
                         [_kernel(iterations=4)], small_arch, 0.10,
                         ["nan"], [0.0, 0.8], seed=1, stats=stats)
    assert len(result.cells) == 2
    clean, faulted = result.cells
    assert clean.rate == 0.0 and not clean.counters.get("fault_counter_nan")
    assert faulted.counters["fault_counter_nan"] > 0
    assert faulted.kernels == 1
    rendered = result.render()
    assert "nan" in rendered and "static" in rendered
    assert stats.counter("fault_counter_nan") > 0


def test_fault_sweep_guard_reduces_violations_vs_bare(small_arch):
    factories = {"governor": UtilizationGovernor}
    kernels = [_kernel(iterations=4)]
    guarded = fault_sweep(factories, kernels, small_arch, 0.10,
                          ["dropout"], [1.0], seed=1, guard=True)
    assert guarded.guard_engagements() >= 1
    bare = fault_sweep(factories, kernels, small_arch, 0.10,
                       ["dropout"], [1.0], seed=1, guard=False)
    assert bare.guard_engagements() == 0


def test_cli_faults_smoke(capsys):
    rc = main(["faults", "--small", "--mode", "dropout",
               "--rates", "0", "1.0", "--kernels", "1",
               "--duration-us", "60", "--stats"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Fault sweep" in out
    assert "guard trips:" in out


def test_cli_faults_export(tmp_path, capsys):
    export = tmp_path / "sweep.json"
    rc = main(["faults", "--small", "--mode", "nan", "--rates", "0.5",
               "--kernels", "1", "--duration-us", "60",
               "--export", str(export)])
    assert rc == 0
    import json
    payload = json.loads(export.read_text())
    assert payload["preset"] == 0.10
    assert payload["cells"]
