"""DecisionMaker / Calibrator wrappers and the SSMDVFSModel artefact."""

import numpy as np
import pytest

from repro.errors import ModelError, PolicyError
from repro.datagen.features import FeatureExtractor, FeatureScaler
from repro.gpu.counters import CounterSet
from repro.nn.mlp import MLP
from repro.core.calibrator import Calibrator
from repro.core.combined import SSMDVFSModel
from repro.core.decision_maker import DecisionMaker

FEATURES = ("power_per_core", "ipc", "stall_mem_hazard")


def _fitted_scaler(width):
    return FeatureScaler().fit(np.random.default_rng(0).normal(size=(30, width)))


def _extractor():
    return FeatureExtractor(FEATURES, issue_width=4.0)


def _counters():
    return CounterSet({"power_per_core": 5.0, "ipc": 2.0,
                       "stall_mem_hazard": 1000.0, "issue_slots": 40000.0,
                       "inst_total": 10000.0})


def _decision_maker(num_levels=6):
    model = MLP([len(FEATURES) + 1, 10, num_levels],
                rng=np.random.default_rng(1))
    return DecisionMaker(model, _extractor(), _fitted_scaler(4), num_levels)


def _calibrator():
    model = MLP([len(FEATURES) + 1, 10, 1], rng=np.random.default_rng(2))
    return Calibrator(model, _extractor(), _fitted_scaler(4))


def test_decision_maker_predicts_valid_level():
    dm = _decision_maker()
    level = dm.predict_level(_counters(), preset=0.1)
    assert 0 <= level < 6


def test_decision_maker_batch_matches_single():
    dm = _decision_maker()
    batch = dm.predict_levels([_counters(), _counters()], preset=0.1)
    assert batch == [dm.predict_level(_counters(), 0.1)] * 2


def test_decision_maker_probabilities_sum_to_one():
    probs = _decision_maker().level_probabilities(_counters(), 0.1)
    assert probs.shape == (6,)
    assert probs.sum() == pytest.approx(1.0)


def test_decision_maker_shape_contracts():
    model = MLP([99, 10, 6])
    with pytest.raises(PolicyError):
        DecisionMaker(model, _extractor(), _fitted_scaler(4), 6)
    wrong_out = MLP([4, 10, 5])
    with pytest.raises(PolicyError):
        DecisionMaker(wrong_out, _extractor(), _fitted_scaler(4), 6)


def test_decision_maker_rejects_negative_preset():
    with pytest.raises(PolicyError):
        _decision_maker().predict_level(_counters(), -0.1)
    with pytest.raises(PolicyError):
        _decision_maker().predict_levels([], 0.1)


def test_calibrator_prediction_nonnegative():
    cal = _calibrator()
    value = cal.predict_instructions(_counters(), 3)
    assert value >= 0.0


def test_calibrator_prediction_scales_with_current_count():
    cal = _calibrator()
    small = cal.predict_instructions(_counters(), 2)
    counters = _counters()
    counters["inst_total"] = 20_000.0
    big = cal.predict_instructions(counters, 2)
    assert big == pytest.approx(2 * small, rel=1e-9)


def test_calibrator_shape_contracts():
    with pytest.raises(PolicyError):
        Calibrator(MLP([4, 10, 2]), _extractor(), _fitted_scaler(4))
    with pytest.raises(PolicyError):
        Calibrator(MLP([99, 10, 1]), _extractor(), _fitted_scaler(4))


def test_unfitted_scaler_rejected():
    with pytest.raises(PolicyError):
        DecisionMaker(MLP([4, 10, 6]), _extractor(), FeatureScaler(), 6)


def test_ssmdvfs_model_round_trip(tmp_path, small_pipeline):
    model = small_pipeline.model("base")
    model.save(tmp_path / "artefact")
    loaded = SSMDVFSModel.load(tmp_path / "artefact")
    assert loaded.feature_names == model.feature_names
    assert loaded.num_levels == model.num_levels
    assert loaded.metadata["variant"] == "base"
    counters = _counters_from(model)
    assert (loaded.decision_maker.predict_level(counters, 0.1)
            == model.decision_maker.predict_level(counters, 0.1))
    assert loaded.calibrator.predict_instructions(
        counters, 2) == pytest.approx(
        model.calibrator.predict_instructions(counters, 2))


def _counters_from(model):
    values = {name: 1.0 for name in model.feature_names}
    values["issue_slots"] = 40000.0
    values["inst_total"] = 10000.0
    return CounterSet(values)


def test_ssmdvfs_model_load_missing(tmp_path):
    with pytest.raises(ModelError):
        SSMDVFSModel.load(tmp_path / "nothing")


def test_ssmdvfs_model_flops_properties(small_pipeline):
    base = small_pipeline.model("base")
    pruned = small_pipeline.model("pruned")
    assert pruned.flops_sparse < base.flops_dense
    assert base.flops_sparse == base.flops_dense  # unpruned
