"""Vectorised quantum kernel: bit-identity with the scalar hot path.

The batched engine's entire value rests on one claim: every vectorised
stage — the stacked interval solve, the batched epoch loop, the fused
V/f-grid replay — produces *bit-identical* results to the serial code
it replaces.  These tests pin that claim at each layer: property-based
random solve stacks, pickled epoch-record streams, whole datagen
chunks, and the solution cache's batched probe/store protocol.
"""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagen.dataset import DVFSDataset
from repro.datagen.protocol import ProtocolConfig, generate_for_kernel
from repro.gpu.arch import small_test_config, titan_x_config
from repro.gpu.cluster import quantum_row_for, quantum_rows_batch
from repro.gpu.interval_model import (SolutionCache, arch_solve_key_cached,
                                      intern_solve_key, phase_params_row,
                                      phase_solve_key_cached,
                                      solve_throughput,
                                      solve_throughput_batch)
from repro.gpu.kernels import KernelProfile
from repro.gpu.phases import Phase, compute_phase, make_mix, memory_phase
from repro.gpu.simulator import GPUSimulator
from repro.parallel import CampaignStats

ARCH = titan_x_config()
F_LEVELS = ARCH.vf_table.frequencies_hz()


@st.composite
def phases(draw):
    """Arbitrary valid phases spanning the physical parameter space."""
    load = draw(st.floats(0.0, 0.35))
    store = draw(st.floats(0.0, 0.12))
    branch = draw(st.floats(0.0, 0.25))
    fp32 = draw(st.floats(0.0, max(0.0, 0.95 - load - store - branch)))
    mix = make_mix(fp32=fp32, load=load, store=store, branch=branch)
    return Phase(
        name="prop",
        instructions=draw(st.integers(1_000, 1_000_000)),
        mix=mix,
        cpi_exec=draw(st.floats(1.0, 6.0)),
        mlp=draw(st.floats(1.0, 8.0)),
        l1_miss_rate=draw(st.floats(0.0, 1.0)),
        l2_miss_rate=draw(st.floats(0.0, 1.0)),
        active_warps=draw(st.floats(1.0, 64.0)),
        divergence=draw(st.floats(0.0, 1.0)),
    )


@st.composite
def solve_stacks(draw):
    """A random (phase, frequency, multipliers) stack for the batch solver."""
    stack = []
    for _ in range(draw(st.integers(1, 8))):
        stack.append((
            draw(phases()),
            draw(st.sampled_from(F_LEVELS)),
            draw(st.floats(0.55, 1.45)),
            draw(st.floats(0.55, 1.45)),
            draw(st.floats(0.55, 1.45)),
        ))
    return stack


@given(solve_stacks())
@settings(max_examples=60, deadline=None)
def test_batch_solver_bit_identical_to_scalar(stack):
    """Every element of a batched solve equals the scalar solver's bits."""
    params = np.stack([phase_params_row(phase) for phase, *_ in stack])
    freq = np.array([s[1] for s in stack])
    wm = np.array([s[2] for s in stack])
    mm = np.array([s[3] for s in stack])
    cm = np.array([s[4] for s in stack])
    batch = solve_throughput_batch(ARCH, params, freq, wm, mm, cm)
    rows = quantum_rows_batch(ARCH, params, batch)
    for j, (phase, f, w, m, c) in enumerate(stack):
        scalar = solve_throughput(ARCH, phase, f, warp_multiplier=w,
                                  miss_multiplier=m, cpi_multiplier=c)
        vector = batch.solution_at(j)
        assert vector == scalar  # dataclass equality: every field's bits
        scalar_row = quantum_row_for(ARCH, phase, scalar)
        assert rows[j].tobytes() == scalar_row.tobytes()


def _kernels():
    return [
        KernelProfile("q.compute", [compute_phase("c", 60_000, warps=16)],
                      iterations=3, jitter=0.05),
        KernelProfile("q.memory",
                      [memory_phase("m", 60_000, warps=40, l1_miss=0.8,
                                    l2_miss=0.7)],
                      iterations=3, jitter=0.05),
    ]


def _run_records(arch, kernels, *, vectorized, use_cache=True, epochs=40,
                 seed=7):
    """Step a level-wiggling run and return its pickled record stream."""
    sim = GPUSimulator(arch, kernels, seed=seed, vectorized=vectorized,
                       use_solution_cache=use_cache)
    num_levels = arch.vf_table.num_levels
    records = []
    for index in range(epochs):
        if sim.finished:
            break
        sim.apply_decision((index // 3) % num_levels)
        records.append(sim.step_epoch())
    return pickle.dumps(records)


@pytest.mark.parametrize("use_cache", [True, False])
def test_step_epoch_vectorized_byte_identical(use_cache):
    """The batched epoch engine replays the scalar loop byte-for-byte,
    with and without the solution cache in the loop."""
    arch = small_test_config(num_clusters=3)
    kernels = _kernels()
    vec = _run_records(arch, kernels, vectorized=True, use_cache=use_cache)
    ser = _run_records(arch, kernels, vectorized=False, use_cache=use_cache)
    assert vec == ser


def test_fused_grid_datagen_byte_identical():
    """Fused V/f-grid replay == serial replay, down to the stored bytes.

    Compares the protocol output three ways: pickled breakpoint chunks,
    every array of the packed dataset (``np.savez`` archives are not
    byte-stable — zip timestamps — so arrays are compared directly), and
    the scalar-loop serial baseline.
    """
    arch = small_test_config(num_clusters=2)
    kernel = KernelProfile("q.grid", [compute_phase("g", 30_000, warps=24)],
                           iterations=60, jitter=0.05)

    def run(fused_grid, vectorized):
        cfg = ProtocolConfig(seed=5, max_breakpoints_per_kernel=2,
                             fused_grid=fused_grid,
                             vectorized_quanta=vectorized)
        return generate_for_kernel(kernel, arch, config=cfg)

    fused = run(True, True)
    serial = run(False, False)
    serial_vec = run(False, True)
    assert pickle.dumps(fused) == pickle.dumps(serial)
    assert pickle.dumps(fused) == pickle.dumps(serial_vec)

    packed_fused = DVFSDataset.from_breakpoints(fused)
    packed_serial = DVFSDataset.from_breakpoints(serial)
    for name in ("counters", "sample_breakpoint", "sample_level",
                 "sample_loss", "sample_instructions", "record_group"):
        a = getattr(packed_fused, name)
        b = getattr(packed_serial, name)
        assert a.tobytes() == b.tobytes(), name


def test_datagen_surfaces_batched_cache_counters():
    """The protocol reports eviction and batched hit/miss counters."""
    arch = small_test_config(num_clusters=2)
    stats = CampaignStats()
    cfg = ProtocolConfig(seed=2, max_breakpoints_per_kernel=2)
    generate_for_kernel(_kernels()[0], arch, config=cfg, stats=stats)
    for name in ("solve_cache_hit", "solve_cache_miss",
                 "solve_cache_batch_hit", "solve_cache_batch_miss",
                 "solve_cache_evictions"):
        assert name in stats.counters
    assert stats.counters["solve_cache_batch_miss"] > 0


def _solved_key_and_rows(arch, phase, freq):
    params = phase_params_row(phase)[None, :]
    batch = solve_throughput_batch(
        arch, params, np.array([freq]), np.ones(1), np.ones(1), np.ones(1))
    rows = quantum_rows_batch(arch, params, batch)
    return batch, rows


def test_cache_batch_probe_store_and_lazy_materialisation():
    """probe/store fill placeholder slots; scalar ``solve`` then serves
    the batch-stored entry, materialising the solution lazily."""
    arch = small_test_config(num_clusters=2)
    phase = compute_phase("lazy", 50_000, warps=16)
    freq = arch.vf_table.frequencies_hz()[0]
    cache = SolutionCache(payload_builder=quantum_row_for)
    key = (arch_solve_key_cached(arch), phase_solve_key_cached(phase),
           freq, 1.0, 1.0, 1.0)

    out = np.empty((1, quantum_row_for(arch, phase,
                                       solve_throughput(arch, phase, freq)
                                       ).size))
    missing = cache.probe_batch([key], out)
    assert [index for index, _ in missing] == [0]
    assert cache.batch_misses == 1

    batch, rows = _solved_key_and_rows(arch, phase, freq)
    cache.store_batch(missing, batch, rows)

    # A second probe hits without touching the slot contents.
    out2 = np.empty_like(out)
    assert cache.probe_batch([key], out2) == []
    assert cache.batch_hits == 1
    assert out2[0].tobytes() == rows[0].tobytes()

    # The scalar path materialises the lazy batch reference on first use
    # and returns the exact scalar-solver bits.
    solution, payload = cache.solve(arch, phase, freq, 1.0, 1.0, 1.0)
    assert solution == solve_throughput(arch, phase, freq)
    assert payload.tobytes() == rows[0].tobytes()
    # Materialised in place: a second solve returns the same object.
    again, _ = cache.solve(arch, phase, freq, 1.0, 1.0, 1.0)
    assert again is solution


def test_cache_export_import_round_trip_interned_keys():
    """export_entries translates interned key ids back to tuples, and
    import re-interns them — a warmed cache serves identical entries."""
    arch = small_test_config(num_clusters=2)
    phase = memory_phase("exp", 40_000, warps=32, l1_miss=0.6, l2_miss=0.5)
    freq = arch.vf_table.frequencies_hz()[-1]
    cache = SolutionCache(payload_builder=quantum_row_for)
    solution, payload = cache.solve(arch, phase, freq, 1.0, 1.0, 1.0)

    exported = cache.export_entries()
    assert len(exported) == 1
    (key, (stored_solution, stored_payload)), = exported.items()
    # Exported keys are plain tuples (portable across processes), not
    # process-local interned ids.
    assert isinstance(key[0], tuple) and isinstance(key[1], tuple)
    assert stored_solution == solution

    warmed = SolutionCache(payload_builder=quantum_row_for)
    warmed.import_entries(exported)
    hit_solution, hit_payload = warmed.solve(arch, phase, freq,
                                             1.0, 1.0, 1.0)
    assert warmed.hits == 1 and warmed.misses == 0
    assert hit_solution == solution
    assert hit_payload.tobytes() == payload.tobytes()


def test_cache_eviction_counter():
    """Clear-on-full eviction is counted, scalar and batched alike."""
    arch = small_test_config(num_clusters=2)
    phase = compute_phase("evict", 10_000, warps=8)
    freqs = arch.vf_table.frequencies_hz()
    cache = SolutionCache(max_entries=2, payload_builder=quantum_row_for)
    for index in range(4):
        cache.solve(arch, phase, freqs[0], 1.0 + index / 16.0, 1.0, 1.0)
    assert cache.evictions > 0


def test_intern_solve_key_is_bijective():
    keys = [(1.0, 2.0), (3.0,), (1.0, 2.0)]
    ids = [intern_solve_key(k) for k in keys]
    assert ids[0] == ids[2]
    assert ids[0] != ids[1]
