"""Energy breakdown accounting and V/f table resampling."""

import dataclasses

import pytest

from repro.errors import ConfigError
from repro.gpu.arch import small_test_config
from repro.gpu.kernels import KernelProfile
from repro.gpu.phases import compute_phase, memory_phase
from repro.gpu.simulator import GPUSimulator
from repro.gpu.vf import interpolated_vf_table, titan_x_vf_table
from repro.power.breakdown import (EnergyBreakdown, breakdown_for_epoch,
                                   run_with_breakdown)
from repro.power.model import PowerModel
from repro.core.policy import StaticPolicy
from repro.units import us


def _kernel(kind="compute", iterations=6):
    phase = (memory_phase("m", 120_000, warps=48, l1_miss=0.9, l2_miss=0.9)
             if kind == "memory" else compute_phase("c", 120_000, warps=16))
    return KernelProfile(f"bd.{kind}", [phase], iterations=iterations,
                         jitter=0.05)


# ---------------------------------------------------------------------------
# EnergyBreakdown container
# ---------------------------------------------------------------------------

def test_total_sums_components():
    breakdown = EnergyBreakdown(instruction_j=1.0, clock_j=2.0,
                                cluster_leakage_j=3.0, uncore_static_j=4.0,
                                dram_j=5.0, l2_j=6.0)
    assert breakdown.total_j == pytest.approx(21.0)
    assert breakdown.fraction("dram") == pytest.approx(5.0 / 21.0)
    assert breakdown.dvfs_scalable_fraction == pytest.approx(6.0 / 21.0)


def test_unknown_component_rejected():
    with pytest.raises(ConfigError):
        EnergyBreakdown().fraction("magic")


def test_empty_breakdown_fractions_zero():
    assert EnergyBreakdown().fraction("dram") == 0.0
    assert EnergyBreakdown().dvfs_scalable_fraction == 0.0


def test_add_accumulates():
    a = EnergyBreakdown(instruction_j=1.0)
    b = EnergyBreakdown(instruction_j=2.0, dram_j=1.0)
    a.add(b)
    assert a.instruction_j == pytest.approx(3.0)
    assert a.dram_j == pytest.approx(1.0)


def test_render():
    text = EnergyBreakdown(instruction_j=1.0).render()
    assert "instruction" in text and "DVFS-scalable" in text


# ---------------------------------------------------------------------------
# Epoch / run breakdown
# ---------------------------------------------------------------------------

def test_epoch_breakdown_matches_power_model(small_arch):
    """Component sum must equal the PowerModel's accounted energy."""
    simulator = GPUSimulator(small_arch, _kernel(), seed=1)
    model = simulator.power_model
    activities = [cluster.run_epoch(us(10)) for cluster in simulator.clusters]
    breakdown = breakdown_for_epoch(activities, model, us(10))
    reference = sum(model.cluster_power(a).energy_j for a in activities)
    reference += model.uncore_power(activities, us(10)).energy_j
    assert breakdown.total_j == pytest.approx(reference, rel=1e-9)


def test_run_with_breakdown_closes(small_arch):
    simulator = GPUSimulator(small_arch, _kernel(iterations=4), seed=2)
    result, breakdown = run_with_breakdown(simulator,
                                           StaticPolicy(5))
    assert simulator.finished
    assert breakdown.total_j == pytest.approx(result.energy_j, rel=1e-9)
    assert result.time_s > 0


def test_memory_kernel_has_larger_invariant_floor(small_arch):
    """A memory-bound kernel burns proportionally more traffic energy,
    so its DVFS-scalable share is smaller — quantifying why its EDP
    gain is bounded."""
    shares = {}
    for kind in ("compute", "memory"):
        simulator = GPUSimulator(small_arch, _kernel(kind, iterations=4),
                                 seed=3)
        _, breakdown = run_with_breakdown(simulator, StaticPolicy(5))
        shares[kind] = breakdown.dvfs_scalable_fraction
    assert shares["memory"] < shares["compute"]


def test_breakdown_validation(small_arch):
    with pytest.raises(ConfigError):
        breakdown_for_epoch([], PowerModel(), 0.0)


# ---------------------------------------------------------------------------
# V/f table resampling
# ---------------------------------------------------------------------------

def test_interpolated_preserves_endpoints():
    base = titan_x_vf_table()
    for n in (3, 6, 12):
        table = interpolated_vf_table(base, n)
        assert table.num_levels == n
        assert table[0].frequency_hz == pytest.approx(base[0].frequency_hz)
        assert table[n - 1].frequency_hz == pytest.approx(
            base[5].frequency_hz)


def test_interpolated_voltages_round_up():
    base = titan_x_vf_table()
    table = interpolated_vf_table(base, 12)
    # Every voltage must be >= the voltage the base curve needs at that
    # frequency (silicon Vmin safety).
    for point in table.points:
        needed = None
        for base_point in base.points:
            if base_point.frequency_hz >= point.frequency_hz - 0.5e6:
                needed = base_point.voltage_v
                break
        assert needed is not None
        assert point.voltage_v >= needed - 1e-12


def test_interpolated_table_is_valid_arch_input(small_arch):
    """A resampled table must plug into the simulator unmodified."""
    table = interpolated_vf_table(titan_x_vf_table(), 3)
    arch = dataclasses.replace(small_arch, vf_table=table)
    simulator = GPUSimulator(arch, _kernel(iterations=2), seed=4)
    result = simulator.run(StaticPolicy(table.default_level),
                           keep_records=False)
    assert result.time_s > 0


def test_interpolated_validation():
    with pytest.raises(ConfigError):
        interpolated_vf_table(titan_x_vf_table(), 1)
