"""Property-style coverage of the guard FSM under random fault trains.

The :class:`GuardedController` state machine has a small contract that
must hold for *every* anomaly sequence, not just the hand-picked ones
in ``test_faults.py``:

* a clean streak of ``fallback_epochs + probation_epochs`` always lands
  the guard back in ACTIVE (liveness: no anomaly history can wedge it),
* in strict mode, ``trip_threshold`` consecutive anomalous epochs from
  ACTIVE always raise :class:`GuardTripped` (safety: the escape hatch
  cannot be starved),
* identical seeds replay identical state traces (campaigns must be
  reproducible down to the guard's trip epochs).

Randomized fault trains are driven through a real simulator so the
sanitization path sees genuine counter windows with injected NaNs.
"""

import numpy as np
import pytest

from repro.core.guarded import ACTIVE, FALLBACK, PROBATION, GuardedController
from repro.core.policy import StaticPolicy
from repro.errors import GuardTripped
from repro.gpu.counters import CounterSet
from repro.gpu.kernels import KernelProfile
from repro.gpu.phases import balanced_phase
from repro.gpu.simulator import GPUSimulator


def _kernel(iterations=120):
    return KernelProfile("p.balanced", [balanced_phase("b", 120_000)],
                         iterations=iterations, jitter=0.05)


def _poison(record):
    """Inject a NaN into every cluster window (a guaranteed anomaly)."""
    for index, counters in enumerate(record.cluster_counters):
        vector = counters.as_vector()
        vector[0] = float("nan")
        record.cluster_counters[index] = CounterSet.from_vector(vector)
    return record


def _drive_sequence(guard, simulator, anomalies):
    """Feed one epoch per flag in ``anomalies``; returns the state trace."""
    trace = []
    for poisoned in anomalies:
        assert not simulator.finished, "kernel too short for this sequence"
        record = simulator.step_epoch()
        if record.all_finished:
            raise AssertionError("kernel too short for this sequence")
        if poisoned:
            record = _poison(record)
        decision = guard.decide(record)
        simulator.apply_decision(decision)
        trace.append(guard.state)
    return trace


@pytest.mark.parametrize("seed", range(12))
def test_clean_streak_always_returns_to_active(small_arch, seed):
    rng = np.random.default_rng(seed)
    trip = int(rng.integers(1, 4))
    fallback_epochs = int(rng.integers(1, 6))
    probation_epochs = int(rng.integers(1, 5))
    guard = GuardedController(StaticPolicy(2), trip_threshold=trip,
                              fallback_epochs=fallback_epochs,
                              probation_epochs=probation_epochs)
    simulator = GPUSimulator(small_arch, _kernel(), seed=seed)
    guard.reset(simulator)
    # Arbitrary anomaly prefix: any reachable state is a valid start.
    prefix = list(rng.random(int(rng.integers(5, 40))) < 0.4)
    _drive_sequence(guard, simulator, prefix)
    # Liveness: one full fallback window plus one clean probation always
    # restores ACTIVE, regardless of the prefix.
    clean = [False] * (fallback_epochs + probation_epochs)
    trace = _drive_sequence(guard, simulator, clean)
    assert trace[-1] == ACTIVE
    # And it stays there while epochs remain clean.
    trace = _drive_sequence(guard, simulator, [False] * 3)
    assert trace == [ACTIVE] * 3


@pytest.mark.parametrize("seed", range(8))
def test_strict_mode_trip_always_raises(small_arch, seed):
    rng = np.random.default_rng(100 + seed)
    trip = int(rng.integers(1, 5))
    guard = GuardedController(StaticPolicy(2), trip_threshold=trip,
                              strict=True)
    simulator = GPUSimulator(small_arch, _kernel(), seed=seed)
    guard.reset(simulator)
    # Clean preamble cannot pre-arm the streak counter.
    _drive_sequence(guard, simulator, [False] * int(rng.integers(0, 6)))
    with pytest.raises(GuardTripped):
        _drive_sequence(guard, simulator, [True] * trip)
    assert guard.observability_counters()["guard_trips"] == 1


@pytest.mark.parametrize("seed", range(6))
def test_random_fault_trains_replay_identically(small_arch, seed):
    def run():
        rng = np.random.default_rng(200 + seed)
        guard = GuardedController(StaticPolicy(2), trip_threshold=2,
                                  fallback_epochs=3, probation_epochs=2)
        simulator = GPUSimulator(small_arch, _kernel(), seed=seed)
        guard.reset(simulator)
        anomalies = list(rng.random(60) < 0.3)
        trace = _drive_sequence(guard, simulator, anomalies)
        return trace, dict(guard.observability_counters())

    first_trace, first_counters = run()
    second_trace, second_counters = run()
    assert first_trace == second_trace
    assert first_counters == second_counters
    # Sanity: the random train actually exercised the machine.
    assert FALLBACK in first_trace


@pytest.mark.parametrize("seed", range(6))
def test_trip_counter_matches_active_to_fallback_transitions(small_arch,
                                                             seed):
    rng = np.random.default_rng(300 + seed)
    guard = GuardedController(StaticPolicy(2), trip_threshold=2,
                              fallback_epochs=3, probation_epochs=2)
    simulator = GPUSimulator(small_arch, _kernel(), seed=seed)
    guard.reset(simulator)
    anomalies = list(rng.random(70) < 0.25)
    pairs = []
    trace = []
    for poisoned in anomalies:
        record = simulator.step_epoch()
        if record.all_finished:
            break
        before = guard.state
        decision = guard.decide(record if not poisoned
                                else _poison(record))
        simulator.apply_decision(decision)
        pairs.append((before, guard.state))
        trace.append(guard.state)
    counters = guard.observability_counters()
    # A trip is exactly an ACTIVE -> FALLBACK step; probation relapses
    # can land FALLBACK -> FALLBACK in one epoch (probation entry and
    # failure in the same decide), so they only bound the transitions.
    active_to_fallback = sum(1 for before, after in pairs
                             if before == ACTIVE and after == FALLBACK)
    probation_to_fallback = sum(1 for before, after in pairs
                                if before == PROBATION
                                and after == FALLBACK)
    assert counters.get("guard_trips", 0) == active_to_fallback
    assert counters.get("guard_probation_failures",
                        0) >= probation_to_fallback
    # The guard never reports PROBATION without having served fallback.
    if PROBATION in trace:
        assert FALLBACK in trace[:trace.index(PROBATION)]
