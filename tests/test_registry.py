"""Experiment registry: completeness and consistency with the repo."""

from pathlib import Path

import pytest

from repro.errors import ReproError
from repro.evaluation.registry import (all_experiments, get_experiment,
                                       paper_experiments, render_registry)

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_paper_artifacts_all_registered():
    ids = {e.experiment_id for e in paper_experiments()}
    assert ids == {"table1", "table2", "fig3", "fig4", "hw"}


def test_every_bench_file_exists():
    for entry in all_experiments():
        assert (REPO_ROOT / entry.bench).exists(), entry.bench


def test_every_registered_module_imports():
    import importlib
    for entry in all_experiments():
        for module in entry.modules:
            importlib.import_module(module)


def test_every_bench_file_is_registered():
    registered = {(REPO_ROOT / e.bench).name for e in all_experiments()}
    on_disk = {p.name for p in (REPO_ROOT / "benchmarks").glob("bench_*.py")}
    # Substrate-speed benches need not reproduce an artefact.
    allowed_unregistered = {"bench_sim_throughput.py",
                            "bench_training_pipeline.py"}
    assert on_disk - registered <= allowed_unregistered


def test_ids_unique():
    ids = [e.experiment_id for e in all_experiments()]
    assert len(ids) == len(set(ids))


def test_get_experiment():
    entry = get_experiment("fig4")
    assert "EDP" in entry.paper_claim
    with pytest.raises(ReproError):
        get_experiment("fig99")


def test_render_registry():
    text = render_registry()
    assert "table1" in text and "mixed-tenancy" in text
    paper_only = render_registry(extensions=False)
    assert "mixed-tenancy" not in paper_only


def test_drivers_resolve():
    import importlib
    for entry in all_experiments():
        if entry.driver.startswith("("):
            continue
        module_name, attr = entry.driver.rsplit(".", 1)
        module = importlib.import_module(module_name)
        assert hasattr(module, attr), entry.driver
