"""PCSTALL and F-LEMMA comparator policies."""

import pytest

from repro.errors import PolicyError
from repro.baselines.flemma import FLEMMAPolicy
from repro.baselines.pcstall import PCSTALLPolicy
from repro.gpu.kernels import KernelProfile
from repro.gpu.phases import compute_phase, memory_phase
from repro.gpu.simulator import GPUSimulator
from repro.power.model import PowerModel
from repro.core.policy import StaticPolicy


def _kernel(kind="memory", iterations=25):
    phase = (memory_phase("m", 120_000, warps=48, l1_miss=0.9, l2_miss=0.9)
             if kind == "memory" else compute_phase("c", 120_000, warps=16))
    return KernelProfile(f"bl.{kind}", [phase], iterations=iterations,
                         jitter=0.05)


def _run(policy, arch, kernel, seed=3):
    sim = GPUSimulator(arch, kernel, PowerModel(), seed=seed)
    return sim.run(policy, keep_records=True)


# ---------------------------------------------------------------------------
# PCSTALL
# ---------------------------------------------------------------------------

def test_pcstall_validation():
    with pytest.raises(PolicyError):
        PCSTALLPolicy(-0.1)
    with pytest.raises(PolicyError):
        PCSTALLPolicy(0.1, history_weight=1.0)


def test_pcstall_drops_frequency_on_memory_kernel(small_arch):
    result = _run(PCSTALLPolicy(0.10), small_arch, _kernel("memory"))
    levels = [lvl for r in result.records for lvl in r.levels]
    assert min(levels) <= 2


def test_pcstall_stays_high_on_compute_kernel(small_arch):
    kernel = _kernel("compute")
    base = _run(StaticPolicy(small_arch.vf_table.default_level),
                small_arch, kernel)
    result = _run(PCSTALLPolicy(0.10), small_arch, kernel)
    assert result.time_s / base.time_s < 1.15


def test_pcstall_saves_energy_on_memory_kernel(small_arch):
    kernel = _kernel("memory")
    base = _run(StaticPolicy(small_arch.vf_table.default_level),
                small_arch, kernel)
    result = _run(PCSTALLPolicy(0.10), small_arch, kernel)
    assert result.energy_j < base.energy_j
    assert result.time_s < base.time_s * 1.12


def test_pcstall_loss_model_sanity():
    policy = PCSTALLPolicy(0.10)
    # Fully memory-bound (stall fraction 1): no predicted loss anywhere.
    assert policy._predict_loss(1.0, 1165e6, 683e6, 1165e6) == pytest.approx(0.0)
    # Fully compute-bound: loss equals the frequency ratio minus one.
    assert policy._predict_loss(0.0, 1165e6, 683e6, 1165e6) == pytest.approx(
        1165 / 683 - 1)
    # In between: monotone in the stall fraction.
    losses = [policy._predict_loss(s, 1165e6, 683e6, 1165e6)
              for s in (0.0, 0.3, 0.6, 0.9)]
    assert losses == sorted(losses, reverse=True)


# ---------------------------------------------------------------------------
# F-LEMMA
# ---------------------------------------------------------------------------

def test_flemma_validation():
    with pytest.raises(PolicyError):
        FLEMMAPolicy(-0.1)
    with pytest.raises(PolicyError):
        FLEMMAPolicy(0.1, update_period=0)
    with pytest.raises(PolicyError):
        FLEMMAPolicy(0.1, warmup_epochs=0)


def test_flemma_warms_up_at_default(small_arch):
    policy = FLEMMAPolicy(0.10, warmup_epochs=4, seed=1)
    result = _run(policy, small_arch, _kernel("memory"))
    # Epoch 0 runs at default (reset), decisions 1..warmup stay default.
    for record in result.records[:4]:
        assert set(record.levels) == {small_arch.vf_table.default_level}


def test_flemma_explores_after_warmup(small_arch):
    policy = FLEMMAPolicy(0.10, warmup_epochs=3, seed=1)
    result = _run(policy, small_arch, _kernel("memory", iterations=40))
    levels = {lvl for r in result.records[4:] for lvl in r.levels}
    assert len(levels) > 1  # exploration moved the operating point


def test_flemma_is_seed_deterministic(small_arch):
    runs = []
    for _ in range(2):
        policy = FLEMMAPolicy(0.10, seed=7)
        runs.append(_run(policy, small_arch, _kernel("memory")).energy_j)
    assert runs[0] == pytest.approx(runs[1])


def test_flemma_underperforms_on_short_programs(small_arch, small_pipeline):
    """The paper's key claim about RL: exploration overhead dominates on
    microsecond-scale programs, so F-LEMMA trails SSMDVFS on EDP."""
    from repro.core.controller import SSMDVFSController
    kernel = _kernel("memory", iterations=25)
    base = _run(StaticPolicy(small_arch.vf_table.default_level), small_arch,
                kernel)
    flemma = _run(FLEMMAPolicy(0.10, seed=2), small_arch, kernel)
    ssm = _run(SSMDVFSController(small_pipeline.model("base"), 0.10),
               small_arch, kernel)
    edp_flemma = flemma.edp / base.edp
    edp_ssm = ssm.edp / base.edp
    assert edp_ssm < edp_flemma + 0.02
