"""AR(1) jitter and workload-position-indexed noise."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.gpu.noise import AR1Jitter, WorkloadNoise
from repro.rng import stream


def test_ar1_zero_sigma_is_constant_one():
    jitter = AR1Jitter(stream("j", 1), sigma=0.0)
    assert all(jitter.step() == 1.0 for _ in range(10))


def test_ar1_stays_clipped():
    jitter = AR1Jitter(stream("j", 1), sigma=0.5, clip=0.3)
    values = [jitter.step() for _ in range(500)]
    assert min(values) >= 0.7
    assert max(values) <= 1.3


def test_ar1_mean_reverts_to_one():
    jitter = AR1Jitter(stream("j", 2), sigma=0.05, rho=0.8)
    values = [jitter.step() for _ in range(5000)]
    assert np.mean(values) == pytest.approx(1.0, abs=0.02)


def test_ar1_snapshot_restore_replays():
    jitter = AR1Jitter(stream("j", 3), sigma=0.1)
    for _ in range(7):
        jitter.step()
    state = jitter.state()
    first = [jitter.step() for _ in range(5)]
    jitter.restore(state)
    second = [jitter.step() for _ in range(5)]
    assert first == second


def test_ar1_rejects_bad_params():
    with pytest.raises(SimulationError):
        AR1Jitter(stream("j", 1), sigma=-0.1)
    with pytest.raises(SimulationError):
        AR1Jitter(stream("j", 1), sigma=0.1, rho=1.0)
    with pytest.raises(SimulationError):
        AR1Jitter(stream("j", 1), sigma=0.1, clip=1.5)


def test_workload_noise_is_position_deterministic():
    a = WorkloadNoise(stream("n", 1), sigma=0.1)
    b = WorkloadNoise(stream("n", 1), sigma=0.1)
    # Query in different orders; values must agree chunk-by-chunk.
    vals_a = [a.multipliers(k) for k in (5, 0, 3, 5)]
    vals_b = [b.multipliers(k) for k in (0, 5, 5, 3)]
    assert vals_a[0] == vals_b[1] == vals_b[2] == vals_a[3]
    assert vals_a[1] == vals_b[0]


def test_workload_noise_zero_sigma():
    noise = WorkloadNoise(stream("n", 1), sigma=0.0)
    assert noise.multipliers(100) == (1.0, 1.0, 1.0)


def test_workload_noise_chunk_mapping():
    noise = WorkloadNoise(stream("n", 1), sigma=0.1, chunk_instructions=1000)
    assert noise.chunk_of(0) == 0
    assert noise.chunk_of(999.5) == 0
    assert noise.chunk_of(1000) == 1
    assert noise.chunk_end(0) == 1000.0


def test_workload_noise_multipliers_positive():
    noise = WorkloadNoise(stream("n", 2), sigma=0.2)
    for k in range(200):
        for m in noise.multipliers(k):
            assert m > 0


def test_workload_noise_negative_chunk_rejected():
    noise = WorkloadNoise(stream("n", 1), sigma=0.1)
    with pytest.raises(SimulationError):
        noise.multipliers(-1)


def test_workload_noise_tracks_are_independent():
    noise = WorkloadNoise(stream("n", 3), sigma=0.2)
    triples = [noise.multipliers(k) for k in range(50)]
    warp = [t[0] for t in triples]
    miss = [t[1] for t in triples]
    assert warp != miss
