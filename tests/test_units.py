"""Unit-conversion helpers."""

import pytest

from repro import units


def test_us_round_trip():
    assert units.to_us(units.us(10.0)) == pytest.approx(10.0)


def test_ns_round_trip():
    assert units.to_ns(units.ns(320.0)) == pytest.approx(320.0)


def test_mhz_round_trip():
    assert units.to_mhz(units.mhz(1165.0)) == pytest.approx(1165.0)


def test_ghz_is_1000_mhz():
    assert units.ghz(1.0) == pytest.approx(units.mhz(1000.0))


def test_cycles_to_seconds():
    # 1165 cycles at 1165 MHz is exactly one microsecond.
    assert units.cycles_to_seconds(1165.0, units.mhz(1165)) == pytest.approx(units.us(1))


def test_seconds_to_cycles_inverse():
    f = units.mhz(878)
    assert units.seconds_to_cycles(units.cycles_to_seconds(5000, f), f) == pytest.approx(5000)


def test_us_of_zero():
    assert units.us(0.0) == 0.0
