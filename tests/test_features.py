"""Feature extraction and scaling."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.datagen.features import (FeatureExtractor, FeatureScaler,
                                    epoch_cycles)
from repro.gpu.counters import CounterSet


def _counters(inst=10_000.0, slots=40_000.0, ipc=1.0, power=5.0):
    return CounterSet({
        "inst_total": inst,
        "issue_slots": slots,
        "ipc": ipc,
        "power_per_core": power,
        "l1_read_miss_rate": 0.4,
    })


def test_epoch_cycles_from_issue_slots():
    assert epoch_cycles(_counters(slots=40_000.0), 4.0) == pytest.approx(10_000)
    with pytest.raises(DatasetError):
        epoch_cycles(_counters(), 0.0)


def test_counts_normalised_per_kilocycle():
    extractor = FeatureExtractor(("inst_total",), issue_width=4.0)
    # 10k instructions over 10k cycles -> 1000 per kilocycle.
    assert extractor.extract(_counters())[0] == pytest.approx(1000.0)


def test_rates_pass_through():
    extractor = FeatureExtractor(("ipc", "power_per_core",
                                  "l1_read_miss_rate"), issue_width=4.0)
    values = extractor.extract(_counters(ipc=2.5, power=7.0))
    assert values[0] == pytest.approx(2.5)
    assert values[1] == pytest.approx(7.0)
    assert values[2] == pytest.approx(0.4)


def test_scale_invariance_of_count_features():
    """Twice the epoch (twice counts, twice slots) -> same features."""
    extractor = FeatureExtractor(("inst_total",), issue_width=4.0)
    a = extractor.extract(_counters(inst=10_000, slots=40_000))
    b = extractor.extract(_counters(inst=20_000, slots=80_000))
    assert a[0] == pytest.approx(b[0])


def test_unknown_counter_rejected():
    with pytest.raises(DatasetError):
        FeatureExtractor(("nonsense",))


def test_empty_feature_list_rejected():
    with pytest.raises(DatasetError):
        FeatureExtractor(())


def test_extract_matrix():
    extractor = FeatureExtractor(("ipc",), issue_width=4.0)
    matrix = extractor.extract_matrix([_counters(ipc=1.0), _counters(ipc=2.0)])
    assert matrix.shape == (2, 1)
    with pytest.raises(DatasetError):
        extractor.extract_matrix([])


def test_scaler_standardises():
    rng = np.random.default_rng(0)
    data = rng.normal(loc=5.0, scale=3.0, size=(500, 4))
    scaler = FeatureScaler()
    out = scaler.fit_transform(data)
    assert np.allclose(out.mean(axis=0), 0.0, atol=1e-9)
    assert np.allclose(out.std(axis=0), 1.0, atol=1e-9)


def test_scaler_constant_column_safe():
    data = np.ones((10, 2))
    out = FeatureScaler().fit_transform(data)
    assert np.isfinite(out).all()


def test_scaler_single_row_transform():
    scaler = FeatureScaler().fit(np.array([[0.0, 10.0], [2.0, 20.0]]))
    row = scaler.transform(np.array([1.0, 15.0]))
    assert row.shape == (2,)
    assert row[0] == pytest.approx(0.0)


def test_scaler_misuse_rejected():
    scaler = FeatureScaler()
    with pytest.raises(DatasetError):
        scaler.transform(np.ones((2, 2)))
    scaler.fit(np.ones((3, 2)))
    with pytest.raises(DatasetError):
        scaler.transform(np.ones((2, 3)))


def test_scaler_round_trip():
    scaler = FeatureScaler().fit(np.random.default_rng(1).normal(size=(20, 3)))
    restored = FeatureScaler.from_arrays(scaler.to_arrays())
    x = np.random.default_rng(2).normal(size=(5, 3))
    assert np.allclose(scaler.transform(x), restored.transform(x))
