"""Fleet resilience: node faults, health FSM, migration, shedding, chaos.

The replay invariants under test:

* **Conservation** — for *any* seeded fault train, every submitted job
  is either completed or shed, exactly once (hypothesis property).
* **Determinism** — the same seed yields a byte-identical
  ``FleetResult`` payload on every replay, faults included.
* **Migration semantics** — crash/hang preemption keeps checkpointed
  progress, loses the remainder, pays the restart overhead, and the
  job finishes elsewhere.
* **Shed discipline** — admission control sheds throughput jobs whose
  deadline became unmeetable; latency jobs are never admission-shed.

Fast by construction: most tests drive the serial discrete-event
replay directly with fabricated phase-1 outcomes (the replay is a pure
function of them), so no GPU simulation runs.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.errors import FleetError, FleetFaultError
from repro.evaluation.fleet_chaos import (ChaosTrial, FleetChaosConfig,
                                          _check_trial, run_fleet_chaos)
from repro.faults import (NODE_FAULT_KINDS, NodeFaultConfig, NodeFaultEvent,
                          NodeFaultPlan)
from repro.fleet import (LATENCY, QUARANTINED, THROUGHPUT, AdmissionConfig,
                         ClusterScheduler, HealthPolicy, Job,
                         MigrationConfig, NodeTracker, PendingJobQueue,
                         ShedJob, policy_factory)
from repro.fleet.metrics import FleetResult

pytestmark = pytest.mark.timeout(120)

US = 1e-6


def _job(job_id, arrival_s=0.0, deadline_s=1.0, expected_s=100 * US,
         job_class=LATENCY):
    return Job(job_id=job_id, name=f"j{job_id}", job_class=job_class,
               kernel=None, arrival_s=arrival_s, expected_s=expected_s,
               deadline_s=deadline_s)


def _service(jobs, service_s=100 * US, energy_j=1e-3, counters=None):
    return {job.job_id: (service_s, energy_j, 10, 3.0, dict(counters or {}))
            for job in jobs}


def _scheduler(arch, nodes, **kwargs):
    kwargs.setdefault("migration", MigrationConfig())
    return ClusterScheduler(arch, policy_factory("governor"),
                            num_nodes=nodes, **kwargs)


def _plan(*events):
    return NodeFaultPlan(list(events))


# ---------------------------------------------------------------------------
# Fault plans
# ---------------------------------------------------------------------------

def test_node_fault_plan_is_deterministic_and_validated():
    config = NodeFaultConfig(crash_rate=0.5, hang_rate=0.5,
                             thermal_rate=0.5, storm_rate=0.5, seed=9)
    plan = NodeFaultPlan.build(config, 4, 1e-3)
    again = NodeFaultPlan.build(config, 4, 1e-3)
    assert plan.to_payload() == again.to_payload()
    assert set(plan.counts_by_kind()) <= set(NODE_FAULT_KINDS)
    assert list(plan) == sorted(plan, key=lambda e: e.at_s)
    with pytest.raises(FleetFaultError):
        plan_bad = _plan(NodeFaultEvent(0.0, 99, "crash", 1e-4))
        plan_bad.validate_for(4)


@pytest.mark.parametrize("bad", [
    dict(kind="meteor"), dict(at_s=-1.0), dict(duration_s=0.0),
    dict(node_id=-1), dict(magnitude=0.0),
])
def test_node_fault_event_validation(bad):
    good = dict(at_s=0.0, node_id=0, kind="crash", duration_s=1e-4,
                magnitude=1.0)
    with pytest.raises(FleetFaultError):
        NodeFaultEvent(**{**good, **bad})


def test_node_fault_config_validation():
    with pytest.raises(FleetFaultError):
        NodeFaultConfig(crash_rate=-0.1)
    with pytest.raises(FleetFaultError):
        NodeFaultConfig(storm_slowdown=0.5)
    assert not NodeFaultConfig().any_active
    assert NodeFaultConfig(hang_rate=0.1).any_active


def test_migration_config_validation():
    with pytest.raises(FleetFaultError):
        MigrationConfig(checkpoint_interval_s=0.0)
    with pytest.raises(FleetFaultError):
        MigrationConfig(restart_overhead_s=-1.0)
    with pytest.raises(FleetFaultError):
        MigrationConfig(hang_detect_s=0.0)


# ---------------------------------------------------------------------------
# Crash / hang migration
# ---------------------------------------------------------------------------

def test_crash_preempts_checkpoints_and_migrates(small_arch):
    jobs = [_job(0)]
    plan = _plan(NodeFaultEvent(50 * US, 0, "crash", 200 * US))
    scheduler = _scheduler(small_arch, 2, fault_plan=plan)
    result = scheduler._replay(jobs, _service(jobs), "crash")
    outcome = result.outcomes[0]
    # 50us executed, checkpoint floor keeps 40us, 10us lost; resumed on
    # node 1 at the crash instant with 5us restart overhead.
    assert outcome.migrations == 1
    assert outcome.node_id == 1
    assert outcome.lost_work_s == pytest.approx(10 * US)
    assert outcome.overhead_s == pytest.approx(5 * US)
    assert outcome.finish_s == pytest.approx(50 * US + 5 * US + 60 * US)
    assert outcome.service_s == pytest.approx(100 * US)
    assert result.counters["migration_preemptions"] == 1
    assert result.counters["migration_requeues"] == 1
    assert result.counters["node_quarantine_crash"] == 1
    assert result.node_summaries[0]["preemptions"] == 1
    assert result.conserved


def test_crash_energy_is_conserved_across_nodes(small_arch):
    jobs = [_job(0)]
    plan = _plan(NodeFaultEvent(50 * US, 0, "crash", 200 * US))
    scheduler = _scheduler(small_arch, 2, fault_plan=plan)
    result = scheduler._replay(jobs, _service(jobs), "crash")
    node_total = sum(node["energy_j"] for node in result.node_summaries)
    assert node_total == pytest.approx(result.outcomes[0].energy_j)
    # The outcome's energy covers the lost work and the restart too.
    rate = 1e-3 / (100 * US)
    assert result.outcomes[0].energy_j == pytest.approx(
        1e-3 + rate * (10 * US + 5 * US))


def test_hang_freezes_completion_until_detection(small_arch):
    jobs = [_job(0)]
    plan = _plan(NodeFaultEvent(30 * US, 0, "hang", 100 * US))
    scheduler = _scheduler(small_arch, 2, fault_plan=plan)
    result = scheduler._replay(jobs, _service(jobs), "hang")
    outcome = result.outcomes[0]
    # Progress froze at 30us (20us checkpointed), detection fired 50us
    # later; the job resumed on node 1: 80us + 5us overhead + 80us left.
    assert outcome.migrations == 1
    assert outcome.lost_work_s == pytest.approx(10 * US)
    assert outcome.finish_s == pytest.approx(80 * US + 5 * US + 80 * US)
    assert result.counters["fleet_hang_detections"] == 1
    assert result.counters["node_quarantine_hang"] == 1
    assert result.conserved


def test_hung_idle_node_is_quarantined_without_preemption(small_arch):
    jobs = [_job(0, arrival_s=200 * US)]
    plan = _plan(NodeFaultEvent(10 * US, 0, "hang", 50 * US))
    scheduler = _scheduler(small_arch, 1, fault_plan=plan)
    result = scheduler._replay(jobs, _service(jobs), "idle-hang")
    # Detection at 60us, outage 50us -> recovered at 110us, well before
    # the job arrives; nothing was preempted.
    assert result.counters["node_quarantine_hang"] == 1
    assert "migration_preemptions" not in result.counters
    assert result.outcomes[0].migrations == 0
    assert result.outcomes[0].start_s == pytest.approx(200 * US)


def test_storm_stretches_jobs_dispatched_into_it(small_arch):
    jobs = [_job(0, arrival_s=10 * US)]
    plan = _plan(NodeFaultEvent(1 * US, 0, "sensor_storm", 300 * US,
                                magnitude=1.5))
    scheduler = _scheduler(small_arch, 1, fault_plan=plan)
    result = scheduler._replay(jobs, _service(jobs), "storm")
    outcome = result.outcomes[0]
    assert outcome.finish_s == pytest.approx(10 * US + 150 * US)
    assert outcome.service_s == pytest.approx(100 * US)
    assert result.counters["node_degrade_storm"] == 1


def test_storm_on_degraded_node_escalates_to_quarantine(small_arch):
    jobs = [_job(0, arrival_s=400 * US)]
    plan = _plan(NodeFaultEvent(1 * US, 0, "sensor_storm", 300 * US,
                                magnitude=1.5),
                 NodeFaultEvent(50 * US, 0, "sensor_storm", 300 * US,
                                magnitude=1.5))
    scheduler = _scheduler(small_arch, 1, fault_plan=plan)
    result = scheduler._replay(jobs, _service(jobs), "escalate")
    assert result.counters["node_quarantine_storm_escalation"] == 1
    assert result.conserved


def test_thermal_runaway_deprioritizes_node(small_arch):
    jobs = [_job(0, arrival_s=10 * US)]
    plan = _plan(NodeFaultEvent(1 * US, 0, "thermal", 500 * US,
                                magnitude=45.0))
    scheduler = _scheduler(small_arch, 2, fault_plan=plan)
    result = scheduler._replay(jobs, _service(jobs), "thermal")
    # The degraded node 0 ranks below healthy node 1 despite the id
    # tie-break, so the job lands on node 1.
    assert result.outcomes[0].node_id == 1
    assert result.counters["node_degrade_thermal"] == 1
    assert result.node_summaries[0]["peak_temperature_c"] > \
        result.node_summaries[1]["peak_temperature_c"]


# ---------------------------------------------------------------------------
# Admission control + shedding
# ---------------------------------------------------------------------------

def test_admission_sheds_unmeetable_throughput_only(small_arch):
    jobs = [_job(0, deadline_s=200 * US, job_class=LATENCY),
            _job(1, deadline_s=30 * US, job_class=THROUGHPUT)]
    scheduler = _scheduler(small_arch, 1,
                           admission=AdmissionConfig(enabled=True))
    result = scheduler._replay(jobs, _service(jobs), "shed")
    assert [o.job_id for o in result.outcomes] == [0]
    assert [s.job_id for s in result.shed] == [1]
    assert result.shed[0].reason == "unmeetable"
    assert result.shed[0].job_class == THROUGHPUT
    assert result.counters["shed_unmeetable"] == 1
    assert result.conserved
    # Shed jobs are not SLO violations.
    assert result.violations() == 0
    assert result.shed_rate() == pytest.approx(0.5)
    assert result.shed_rate(THROUGHPUT) == pytest.approx(1.0)


def test_unmeetable_latency_jobs_run_and_violate_instead(small_arch):
    jobs = [_job(0, deadline_s=30 * US, job_class=LATENCY)]
    scheduler = _scheduler(small_arch, 1,
                           admission=AdmissionConfig(enabled=True))
    result = scheduler._replay(jobs, _service(jobs), "latency")
    assert not result.shed
    assert result.violations() == 1


def test_admission_disabled_serves_everything(small_arch):
    jobs = [_job(0, deadline_s=30 * US, job_class=THROUGHPUT)]
    scheduler = _scheduler(small_arch, 1)
    result = scheduler._replay(jobs, _service(jobs), "no-admission")
    assert not result.shed and len(result.outcomes) == 1


def test_migration_budget_exhaustion_sheds(small_arch):
    jobs = [_job(0)]
    plan = _plan(NodeFaultEvent(50 * US, 0, "crash", 200 * US))
    scheduler = _scheduler(small_arch, 2, fault_plan=plan,
                           migration=MigrationConfig(max_migrations=0))
    result = scheduler._replay(jobs, _service(jobs), "budget")
    assert not result.outcomes
    assert result.shed[0].reason == "migration_limit"
    assert result.conserved
    # Empty-outcome results still aggregate and export.
    assert result.makespan_s == 0.0
    assert result.mean_utilization() == 0.0
    payload = result.to_payload()
    assert payload["shed_jobs"] == 1 and payload["conserved"] is True


def test_shed_job_rejects_unknown_reason():
    with pytest.raises(FleetError):
        ShedJob(job_id=0, name="j0", job_class=LATENCY, arrival_s=0.0,
                deadline_s=1.0, expected_s=1e-4, shed_s=0.0,
                reason="gremlins")


# ---------------------------------------------------------------------------
# Queue requeue accounting (migrated jobs are not fresh demand)
# ---------------------------------------------------------------------------

def test_requeued_jobs_do_not_inflate_peak_depth():
    queue = PendingJobQueue()
    for job_id in range(3):
        queue.push(_job(job_id))
    victim = queue.pop()
    queue.push(victim, requeued=True)
    queue.push(_job(7))
    assert queue.peak_depth == 3
    assert queue.peak_depth_total == 4
    assert queue.requeues == 1
    assert queue.counters() == {"queue_peak_depth": 3,
                                "queue_peak_depth_total": 4,
                                "queue_requeues": 1}


def test_requeued_job_keeps_original_submit_time_and_deadline():
    queue = PendingJobQueue()
    job = _job(0, arrival_s=5 * US, deadline_s=40 * US)
    queue.push(job)
    queue.push(queue.pop(), requeued=True)
    requeued = queue.pop()
    assert requeued.arrival_s == job.arrival_s
    assert requeued.deadline_s == job.deadline_s


# ---------------------------------------------------------------------------
# Health FSM
# ---------------------------------------------------------------------------

def test_deadline_miss_streak_degrades_and_clean_streak_heals():
    tracker = NodeTracker(1, health=HealthPolicy(miss_threshold=3,
                                                 clean_streak=2))
    node = tracker.nodes[0]
    for _ in range(2):
        tracker.note_deadline_miss(node)
    assert node.health == "healthy"
    tracker.note_deadline_miss(node)
    assert node.health == "degraded"
    tracker.note_clean_completion(node, 1.0)
    assert node.health == "degraded"
    tracker.note_clean_completion(node, 1.0)
    assert node.health == "healthy"
    assert tracker.counters["node_degrade_deadline_misses"] == 1


def test_quarantine_drains_placement_and_probation_readmits():
    tracker = NodeTracker(2, health=HealthPolicy(probation_jobs=2))
    node = tracker.nodes[0]
    tracker.quarantine(node, 0.0, 100 * US, "crash")
    assert not node.placeable
    assert tracker.least_contended(0.0).node_id == 1
    assert not tracker.end_outage(node, 50 * US)  # outage still open
    assert tracker.end_outage(node, 100 * US)
    assert node.health == "recovering"
    tracker.note_clean_completion(node, 110 * US)
    tracker.note_clean_completion(node, 120 * US)
    assert node.health == "healthy"
    assert tracker.counters["node_readmissions"] == 1


def test_all_nodes_quarantined_raises():
    tracker = NodeTracker(1)
    tracker.quarantine(tracker.nodes[0], 0.0, 1.0, "crash")
    with pytest.raises(FleetError):
        tracker.least_contended(0.0)
    assert tracker.idle_nodes(0.0) == []


def test_quarantined_node_rejects_assignment():
    tracker = NodeTracker(1)
    node = tracker.nodes[0]
    tracker.quarantine(node, 0.0, 1.0, "crash")
    with pytest.raises(FleetError):
        tracker.assign(node, _job(0), 2.0, 3.0)


# ---------------------------------------------------------------------------
# Policy counters surfaced at fleet scope
# ---------------------------------------------------------------------------

def test_guard_counters_surface_in_result_and_nodes(small_arch):
    jobs = [_job(0)]
    counters = {"guard_trips": 2, "drift_alarms": 1, "loop_iterations": 9}
    scheduler = _scheduler(small_arch, 1)
    result = scheduler._replay(jobs, _service(jobs, counters=counters),
                               "guard")
    assert result.policy_counters == {"guard_trips": 2, "drift_alarms": 1}
    assert result.node_summaries[0]["policy_counters"] == {
        "drift_alarms": 1, "guard_trips": 2}
    payload = result.to_payload()
    assert payload["policy_counters"]["guard_trips"] == 2


# ---------------------------------------------------------------------------
# Property: conservation + determinism under arbitrary fault trains
# ---------------------------------------------------------------------------

@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_any_fault_train_conserves_jobs_and_replays_identically(
        small_arch, data):
    seed = data.draw(st.integers(0, 2 ** 20), label="seed")
    num_jobs = data.draw(st.integers(1, 10), label="jobs")
    num_nodes = data.draw(st.integers(1, 4), label="nodes")
    rates = [data.draw(st.floats(0.0, 1.5), label=kind)
             for kind in NODE_FAULT_KINDS]
    admission_on = data.draw(st.booleans(), label="admission")

    rng = np.random.default_rng(seed)
    jobs = []
    for job_id in range(num_jobs):
        arrival = float(rng.uniform(0.0, 500 * US))
        expected = float(rng.uniform(20 * US, 200 * US))
        jobs.append(Job(
            job_id=job_id, name=f"j{job_id}",
            job_class=LATENCY if rng.random() < 0.5 else THROUGHPUT,
            kernel=None, arrival_s=arrival, expected_s=expected,
            deadline_s=arrival + expected * float(rng.uniform(1.2, 4.0))))
    jobs.sort(key=lambda j: (j.arrival_s, j.job_id))
    service = {
        job.job_id: (float(rng.uniform(10 * US, 250 * US)),
                     float(rng.uniform(1e-4, 1e-2)),
                     int(rng.integers(1, 50)), 3.0,
                     {"guard_trips": int(rng.integers(0, 3))})
        for job in jobs}
    plan = NodeFaultPlan.build(
        NodeFaultConfig(crash_rate=rates[0], hang_rate=rates[1],
                        thermal_rate=rates[2], storm_rate=rates[3],
                        seed=seed),
        num_nodes, 1e-3)

    def replay():
        scheduler = _scheduler(
            small_arch, num_nodes, seed=seed, fault_plan=plan,
            admission=AdmissionConfig(enabled=admission_on))
        return scheduler._replay(jobs, service, "property")

    first, second = replay(), replay()

    completed = [o.job_id for o in first.outcomes]
    shed = [s.job_id for s in first.shed]
    assert sorted(completed + shed) == sorted(j.job_id for j in jobs)
    assert first.conserved
    for outcome in first.outcomes:
        assert outcome.finish_s >= outcome.start_s >= outcome.arrival_s
        assert outcome.queued_s >= 0.0
        assert outcome.lost_work_s >= 0.0 and outcome.overhead_s >= 0.0
    for shed_job in first.shed:
        if shed_job.reason == "unmeetable":
            assert shed_job.job_class == THROUGHPUT
    assert json.dumps(first.to_payload(), sort_keys=True) == \
        json.dumps(second.to_payload(), sort_keys=True)


# ---------------------------------------------------------------------------
# End-to-end: faulted run is byte-stable across worker counts
# ---------------------------------------------------------------------------

@pytest.mark.timeout(300)
def test_faulted_run_is_byte_identical_across_worker_counts(small_arch):
    from repro.fleet import TraceConfig, build_trace
    jobs = build_trace(small_arch, TraceConfig(trace="burst", jobs=6,
                                               nodes=2, load=1.2, seed=4))
    horizon = max(j.arrival_s for j in jobs) + 1e-3
    plan = NodeFaultPlan.build(
        NodeFaultConfig(crash_rate=0.8, hang_rate=0.5, seed=6), 2, horizon)
    payloads = []
    for workers in (1, 2):
        scheduler = _scheduler(small_arch, 2, seed=11, workers=workers,
                               fault_plan=plan,
                               admission=AdmissionConfig(enabled=True))
        result = scheduler.run(jobs, trace_name="burst")
        payloads.append(json.dumps(result.to_payload(), sort_keys=True))
    assert payloads[0] == payloads[1]


# ---------------------------------------------------------------------------
# The fleet-chaos harness
# ---------------------------------------------------------------------------

def test_fleet_chaos_config_validation():
    with pytest.raises(FleetError):
        FleetChaosConfig(trials=0)
    with pytest.raises(FleetError):
        FleetChaosConfig(determinism_trials=5, trials=2)
    with pytest.raises(FleetError):
        FleetChaosConfig(faults=NodeFaultConfig())  # nothing active


@pytest.mark.timeout(300)
def test_fleet_chaos_harness_passes_and_exports(small_arch, tmp_path):
    config = FleetChaosConfig(jobs=8, nodes=3, trials=2,
                              determinism_trials=1, seed=5,
                              crash_write_trials=4)
    result = run_fleet_chaos(small_arch, policy_factory("governor"),
                             config, policy_name="governor",
                             store_root=tmp_path / "store")
    assert result.passed, result.violations
    assert len(result.trials) == 2
    assert result.trials[0].byte_stable is True
    assert result.trials[1].byte_stable is None
    assert all(t.conserved for t in result.trials)
    assert result.crash_torn_reads == 0 and result.crash_trials > 0
    assert result.counters["fleet_chaos_trials"] == 2
    path = result.export_json(tmp_path / "chaos.json")
    payload = json.loads(path.read_text())
    assert payload["passed"] is True
    assert "fleet_fault_crash" in payload["counters"] or \
        payload["counters"].get("fleet_chaos_trials") == 2
    assert "invariants held" in result.render()


def test_chaos_check_trial_flags_violations():
    record = ChaosTrial(
        trial=0, seed=1, fault_counts={}, submitted=4, completed=2,
        shed=1, migrations=0, quarantines=3, recoveries=1,
        still_quarantined=0, conserved=False, byte_stable=False,
        slo_violation_rate=0.0, shed_rate=0.25)
    fleet = FleetResult(policy_name="p", trace_name="t", seed=1,
                        num_nodes=2, shed=[ShedJob(
                            job_id=9, name="j9", job_class=LATENCY,
                            arrival_s=0.0, deadline_s=1.0, expected_s=1e-4,
                            shed_s=0.0, reason="unmeetable")])
    violations = []
    _check_trial(fleet, record, violations)
    text = "\n".join(violations)
    assert "conservation broken" in text
    assert "payload differs" in text
    assert "wedged in quarantine" in text
    assert "latency-class job 9" in text


@pytest.mark.timeout(300)
def test_fleet_chaos_cli_roundtrip(tmp_path):
    export = tmp_path / "FLEET_chaos.json"
    code = main(["fleet-chaos", "--small", "--jobs", "8", "--nodes", "3",
                 "--trials", "1", "--seed", "5", "--crash-trials", "4",
                 "--store", str(tmp_path / "store"),
                 "--export", str(export)])
    assert code == 0
    payload = json.loads(export.read_text())
    assert payload["passed"] is True
    assert payload["trials"][0]["conserved"] is True


def test_chaos_quarantines_always_recover(small_arch):
    """Timed recoveries: no trial may end with a wedged quarantine."""
    config = FleetChaosConfig(jobs=6, nodes=2, trials=1,
                              determinism_trials=0, seed=13,
                              crash_write_trials=0,
                              faults=NodeFaultConfig(crash_rate=1.5,
                                                     hang_rate=1.0,
                                                     seed=13))
    result = run_fleet_chaos(small_arch, policy_factory("governor"),
                             config, policy_name="governor")
    assert result.passed, result.violations
    trial = result.trials[0]
    assert trial.recoveries >= trial.quarantines - trial.still_quarantined
    assert trial.still_quarantined == sum(
        1 for _ in range(0))  # every timed outage resolved
    assert trial.still_quarantined == 0
