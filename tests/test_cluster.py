"""Per-cluster execution engine."""

import pytest

from repro.errors import SimulationError
from repro.gpu.arch import titan_x_config
from repro.gpu.cluster import ClusterState, build_counters
from repro.gpu.kernels import KernelProfile
from repro.gpu.noise import WorkloadNoise
from repro.gpu.phases import balanced_phase, compute_phase, memory_phase
from repro.rng import stream
from repro.units import us

ARCH = titan_x_config()


def _cluster(phases=None, iterations=3, sigma=0.0, skew=0.0):
    kernel = KernelProfile(
        name="t.k",
        phases=phases or [compute_phase("a", 20_000),
                          memory_phase("b", 15_000)],
        iterations=iterations,
    )
    noise = WorkloadNoise(stream("test-noise", 9), sigma=sigma)
    return ClusterState(ARCH, kernel, noise, skew_instructions=skew)


def test_epoch_advances_work():
    cluster = _cluster()
    activity = cluster.run_epoch(us(10))
    assert activity.instructions > 0
    assert cluster.instructions_done == pytest.approx(activity.instructions)


def test_epoch_duration_recorded():
    activity = _cluster().run_epoch(us(10))
    assert activity.duration_s == pytest.approx(us(10))
    assert 0 < activity.busy_s <= us(10) + 1e-12


def test_instruction_classes_sum_to_total():
    activity = _cluster().run_epoch(us(10))
    assert sum(activity.inst_by_class.values()) == pytest.approx(
        activity.instructions, rel=1e-9)


def test_kernel_finishes_and_then_idles():
    cluster = _cluster(iterations=1)
    for _ in range(200):
        if cluster.finished:
            break
        cluster.run_epoch(us(10))
    assert cluster.finished
    idle = cluster.run_epoch(us(10))
    assert idle.instructions == 0
    assert idle.cycles > 0  # idle cycles still clock
    assert idle.finished


def test_lower_level_executes_fewer_instructions_on_compute():
    fast = _cluster(phases=[compute_phase("c", 10 ** 9, warps=16)])
    slow = _cluster(phases=[compute_phase("c", 10 ** 9, warps=16)])
    slow.set_level(0)
    a_fast = fast.run_epoch(us(10))
    a_slow = slow.run_epoch(us(10))
    assert a_slow.instructions < a_fast.instructions * 0.75


def test_memory_bound_barely_affected_by_level():
    fast = _cluster(phases=[memory_phase("m", 10 ** 9, l1_miss=0.8, l2_miss=0.8)])
    slow = _cluster(phases=[memory_phase("m", 10 ** 9, l1_miss=0.8, l2_miss=0.8)])
    slow.set_level(0)
    a_fast = fast.run_epoch(us(10))
    a_slow = slow.run_epoch(us(10))
    assert a_slow.instructions > a_fast.instructions * 0.88


def test_set_level_out_of_range_rejected():
    with pytest.raises(SimulationError):
        _cluster().set_level(6)
    with pytest.raises(SimulationError):
        _cluster().set_level(-1)


def test_dvfs_transition_charges_dead_time():
    a = _cluster(phases=[compute_phase("c", 10 ** 9)])
    b = _cluster(phases=[compute_phase("c", 10 ** 9)])
    b.set_level(4)
    b.set_level(5)  # two transitions pending
    act_a = a.run_epoch(us(10))
    act_b = b.run_epoch(us(10))
    assert act_b.instructions < act_a.instructions


def test_same_level_switch_is_free():
    cluster = _cluster()
    cluster.set_level(cluster.level)
    assert cluster._pending_transition_s == 0.0


def test_snapshot_restore_replays_exactly():
    cluster = _cluster(sigma=0.1)
    cluster.run_epoch(us(10))
    snap = cluster.snapshot()
    first = cluster.run_epoch(us(10))
    cluster.restore(snap)
    second = cluster.run_epoch(us(10))
    assert first.instructions == pytest.approx(second.instructions)
    assert first.stall_mem_load == pytest.approx(second.stall_mem_load)


def test_replay_at_other_level_is_deterministic():
    """Restoring and running at another V/f must itself replay exactly —
    the noise is indexed by workload position, not by wall-clock time."""
    cluster = _cluster(sigma=0.15, iterations=50)
    cluster.run_epoch(us(10))
    snap = cluster.snapshot()
    base_done = None
    runs = []
    for _ in range(2):
        cluster.restore(snap)
        cluster.set_level(0)
        activity = cluster.run_epoch(us(50))
        runs.append(activity)
        base_done = cluster.instructions_done
    assert runs[0].instructions == pytest.approx(runs[1].instructions)
    assert runs[0].stall_mem_load == pytest.approx(runs[1].stall_mem_load)
    # And the slow run cannot out-execute the fast one over the same time.
    cluster.restore(snap)
    cluster.set_level(5)
    cluster.run_epoch(us(50))
    assert base_done <= cluster.instructions_done + 1e-6


def test_nonpositive_epoch_rejected():
    with pytest.raises(SimulationError):
        _cluster().run_epoch(0.0)


def test_build_counters_consistency():
    cluster = _cluster(phases=[balanced_phase("b", 50_000)])
    activity = cluster.run_epoch(us(10))
    counters = build_counters(activity, ARCH)
    assert counters["inst_total"] == pytest.approx(activity.instructions)
    assert counters["ipc"] == pytest.approx(activity.ipc)
    assert counters["l1_read_hit"] == pytest.approx(
        counters["l1_read_access"] - counters["l1_read_miss"])
    assert 0 <= counters["occupancy"] <= 1
    assert 0 <= counters["warp_issue_efficiency"] <= 1
    assert counters["stall_mem_hazard"] == pytest.approx(
        counters["stall_mem_hazard_load"] + counters["stall_mem_hazard_nonload"])


def test_skew_desynchronises_clusters():
    a = _cluster(skew=0.0)
    b = _cluster(skew=5_000.0)
    assert b.instructions_done > a.instructions_done
