"""GPU architecture configuration."""

import pytest

from repro.errors import ConfigError
from repro.gpu.arch import GPUArchConfig, small_test_config, titan_x_config
from repro.units import mhz


def test_titan_x_cluster_count():
    assert titan_x_config().num_clusters == 24


def test_titan_x_default_frequency():
    assert titan_x_config().default_frequency_hz == pytest.approx(mhz(1165))


def test_cluster_bandwidth_is_fair_share():
    arch = titan_x_config()
    assert arch.cluster_bandwidth_bytes_per_s == pytest.approx(
        arch.dram_bandwidth_bytes_per_s / arch.num_clusters)


def test_memory_latency_pure_l1_hit_is_frequency_invariant_in_cycles():
    arch = titan_x_config()
    lat_fast = arch.memory_latency_cycles(0.0, 0.0, mhz(1165))
    lat_slow = arch.memory_latency_cycles(0.0, 0.0, mhz(683))
    assert lat_fast == pytest.approx(lat_slow)
    assert lat_fast == pytest.approx(arch.l1_hit_latency_cycles)


def test_memory_latency_grows_with_frequency_when_missing():
    arch = titan_x_config()
    lat_fast = arch.memory_latency_cycles(1.0, 1.0, mhz(1165))
    lat_slow = arch.memory_latency_cycles(1.0, 1.0, mhz(683))
    assert lat_fast > lat_slow


def test_memory_latency_grows_with_miss_rates():
    arch = titan_x_config()
    f = mhz(1165)
    assert (arch.memory_latency_cycles(0.8, 0.5, f)
            > arch.memory_latency_cycles(0.2, 0.5, f))
    assert (arch.memory_latency_cycles(0.5, 0.9, f)
            > arch.memory_latency_cycles(0.5, 0.1, f))


def test_memory_latency_rejects_bad_rates():
    arch = titan_x_config()
    with pytest.raises(ConfigError):
        arch.memory_latency_cycles(1.5, 0.0, mhz(1165))
    with pytest.raises(ConfigError):
        arch.memory_latency_cycles(0.0, -0.1, mhz(1165))


def test_invalid_configs_rejected():
    with pytest.raises(ConfigError):
        GPUArchConfig(num_clusters=0)
    with pytest.raises(ConfigError):
        GPUArchConfig(issue_width=0)
    with pytest.raises(ConfigError):
        GPUArchConfig(dram_bandwidth_bytes_per_s=-1)
    with pytest.raises(ConfigError):
        GPUArchConfig(cache_line_bytes=0)


def test_small_test_config_is_smaller():
    small = small_test_config()
    big = titan_x_config()
    assert small.num_clusters < big.num_clusters
    assert small.vf_table.num_levels == big.vf_table.num_levels
