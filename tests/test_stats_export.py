"""Dataset diagnostics and figure-data export."""

import json

import numpy as np
import pytest

from repro.errors import DatasetError, ReproError
from repro.datagen.stats import analyze_dataset
from repro.evaluation.export import (export_comparison_csv, export_fig3_csv,
                                     export_fig4_json, load_fig4_json)
from repro.evaluation.experiments import Fig3Result, Fig4Result
from repro.evaluation.runner import ComparisonResult, PolicyRun
from repro.nn.compress import CompressionPoint


# ---------------------------------------------------------------------------
# Dataset statistics
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def report(small_dataset):
    return analyze_dataset(small_dataset, preset=0.10)


def test_report_counts(report, small_dataset):
    assert report.num_groups == small_dataset.num_groups
    assert report.num_records == small_dataset.num_breakpoints
    assert report.num_samples == small_dataset.num_samples


def test_report_identifies_sensitivity_classes(report):
    by_kernel = {s.kernel: s for s in report.per_kernel}
    assert by_kernel["t.compute"].frequency_sensitive
    assert not by_kernel["t.memory"].frequency_sensitive


def test_report_entropy_positive(report):
    """If the oracle labels carried no information, there would be
    nothing to learn; the diagnostic must detect real label diversity."""
    assert report.label_entropy_bits > 0.5


def test_report_correlations_in_range(report):
    for value in report.counter_label_correlation.values():
        assert -1.0 - 1e-9 <= value <= 1.0 + 1e-9


def test_report_renders(report):
    text = report.render()
    assert "Dataset diagnostics" in text
    assert "t.compute" in text
    assert "entropy" in text


def test_analyze_rejects_bad_preset(small_dataset):
    with pytest.raises(DatasetError):
        analyze_dataset(small_dataset, preset=1.5)


# ---------------------------------------------------------------------------
# Export
# ---------------------------------------------------------------------------

def _comparison():
    comparison = ComparisonResult(preset=0.10)
    for policy in ("baseline", "alpha"):
        for kernel in ("k1", "k2"):
            comparison.runs.append(PolicyRun(
                policy_name=policy, kernel_name=kernel, time_s=1e-4,
                energy_j=1e-2, normalized_edp=0.9, normalized_latency=1.05,
                epochs=30))
    return comparison


def test_export_comparison_csv(tmp_path):
    path = tmp_path / "fig4.csv"
    export_comparison_csv(_comparison(), path)
    lines = path.read_text().strip().splitlines()
    assert lines[0].startswith("policy,kernel")
    assert len(lines) == 1 + 4


def test_export_fig4_json_round_trip(tmp_path):
    result = Fig4Result(comparisons={0.10: _comparison()})
    path = tmp_path / "fig4.json"

    # headline() needs specific policies; patch a minimal set.
    comparison = result.comparisons[0.10]
    for policy in ("pcstall", "flemma", "ssmdvfs-pruned"):
        comparison.runs.append(PolicyRun(
            policy_name=policy, kernel_name="k1", time_s=1e-4,
            energy_j=1e-2, normalized_edp=0.95, normalized_latency=1.02,
            epochs=30))
    export_fig4_json(result, path)
    payload = load_fig4_json(path)
    assert "0.10" in payload
    assert payload["0.10"]["alpha"]["k1"]["edp"] == pytest.approx(0.9)
    assert "headline" in payload


def test_load_missing_json(tmp_path):
    with pytest.raises(ReproError):
        load_fig4_json(tmp_path / "nope.json")


def test_export_fig3_csv(tmp_path):
    result = Fig3Result(
        layerwise=[CompressionPoint("a", "layerwise", 100, 90.0, 5.0,
                                    (6, 4, 6), (7, 4, 1))],
        pruning=[CompressionPoint("b", "pruning", 60, 88.0, 6.0,
                                  (6, 4, 6), (7, 4, 1), sparsity=0.5)],
    )
    path = tmp_path / "fig3.csv"
    export_fig3_csv(result, path)
    lines = path.read_text().strip().splitlines()
    assert len(lines) == 3
    assert "pruning" in lines[2]
