"""Dense layers: forward, backward (numerical gradients), masks."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.nn.layers import Dense


def _layer(fan_in=4, fan_out=3, activation="relu", seed=0):
    return Dense(fan_in, fan_out, activation=activation,
                 rng=np.random.default_rng(seed))


def test_forward_shape():
    layer = _layer()
    out = layer.forward(np.ones((5, 4)))
    assert out.shape == (5, 3)


def test_relu_clips_negative():
    layer = _layer(activation="relu")
    layer.weights = -np.ones_like(layer.weights)
    layer.bias[:] = 0.0
    out = layer.forward(np.ones((2, 4)))
    assert np.all(out == 0.0)


def test_linear_passes_negative():
    layer = _layer(activation="linear")
    layer.weights = -np.ones_like(layer.weights)
    out = layer.forward(np.ones((2, 4)))
    assert np.all(out < 0.0)


def test_bad_input_shape_rejected():
    with pytest.raises(ModelError):
        _layer().forward(np.ones((5, 7)))


def test_unknown_activation_rejected():
    with pytest.raises(ModelError):
        Dense(3, 3, activation="tanh")


def test_backward_before_forward_rejected():
    with pytest.raises(ModelError):
        _layer().backward(np.ones((5, 3)))


def test_numerical_gradient_weights():
    """Backprop gradient must match finite differences."""
    rng = np.random.default_rng(3)
    layer = _layer(activation="relu", seed=3)
    x = rng.normal(size=(6, 4))
    upstream = rng.normal(size=(6, 3))

    layer.forward(x, train=True)
    layer.backward(upstream)
    analytic = layer.grad_weights.copy()

    eps = 1e-6
    for i in range(4):
        for j in range(3):
            layer.weights[i, j] += eps
            plus = float((layer.forward(x) * upstream).sum())
            layer.weights[i, j] -= 2 * eps
            minus = float((layer.forward(x) * upstream).sum())
            layer.weights[i, j] += eps
            numeric = (plus - minus) / (2 * eps)
            assert analytic[i, j] == pytest.approx(numeric, abs=1e-4)


def test_numerical_gradient_input():
    rng = np.random.default_rng(4)
    layer = _layer(activation="linear", seed=4)
    x = rng.normal(size=(2, 4))
    upstream = rng.normal(size=(2, 3))
    layer.forward(x, train=True)
    grad_x = layer.backward(upstream)
    eps = 1e-6
    for n in range(2):
        for i in range(4):
            x_mod = x.copy()
            x_mod[n, i] += eps
            plus = float((layer.forward(x_mod) * upstream).sum())
            x_mod[n, i] -= 2 * eps
            minus = float((layer.forward(x_mod) * upstream).sum())
            numeric = (plus - minus) / (2 * eps)
            assert grad_x[n, i] == pytest.approx(numeric, abs=1e-4)


def test_mask_zeroes_weights_in_forward():
    layer = _layer(activation="linear")
    layer.mask[:] = 0.0
    out = layer.forward(np.ones((2, 4)))
    assert np.all(out == layer.bias)


def test_mask_blocks_gradients():
    layer = _layer()
    layer.mask[0, 0] = 0.0
    layer.forward(np.ones((2, 4)), train=True)
    layer.backward(np.ones((2, 3)))
    assert layer.grad_weights[0, 0] == 0.0


def test_remove_output_units():
    layer = _layer(fan_in=4, fan_out=5)
    layer.remove_output_units([1, 3])
    assert layer.fan_out == 3
    assert layer.bias.shape == (3,)


def test_remove_all_outputs_rejected():
    layer = _layer(fan_in=4, fan_out=2)
    with pytest.raises(ModelError):
        layer.remove_output_units([0, 1])


def test_remove_input_units():
    layer = _layer(fan_in=4, fan_out=3)
    layer.remove_input_units([0])
    assert layer.fan_in == 3


def test_clone_is_deep():
    layer = _layer()
    copy = layer.clone()
    copy.weights[0, 0] = 99.0
    assert layer.weights[0, 0] != 99.0


def test_num_active_weights_tracks_mask():
    layer = _layer(fan_in=4, fan_out=3)
    assert layer.num_active_weights == 12
    layer.mask[0, :] = 0.0
    assert layer.num_active_weights == 9


def test_zero_dim_rejected():
    with pytest.raises(ModelError):
        Dense(0, 3)
