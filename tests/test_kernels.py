"""Kernel profiles and execution cursors."""

import pytest

from repro.errors import WorkloadError
from repro.gpu.kernels import KernelCursor, KernelProfile
from repro.gpu.phases import balanced_phase, compute_phase


def _kernel(iterations=2):
    return KernelProfile(
        name="test.kernel",
        phases=[compute_phase("a", 1000), balanced_phase("b", 500)],
        iterations=iterations,
    )


def test_total_instructions():
    assert _kernel(iterations=3).total_instructions == 3 * 1500


def test_num_segments():
    assert _kernel(iterations=3).num_segments == 6


def test_segment_wraps_per_iteration():
    kernel = _kernel(iterations=2)
    assert kernel.segment(0).name == "a"
    assert kernel.segment(1).name == "b"
    assert kernel.segment(2).name == "a"


def test_segment_out_of_range():
    with pytest.raises(WorkloadError):
        _kernel().segment(99)


def test_empty_phases_rejected():
    with pytest.raises(WorkloadError):
        KernelProfile(name="bad", phases=[], iterations=1)


def test_zero_iterations_rejected():
    with pytest.raises(WorkloadError):
        _kernel(iterations=0)


def test_with_iterations():
    scaled = _kernel(iterations=1).with_iterations(10)
    assert scaled.iterations == 10
    assert scaled.name == "test.kernel"


def test_cursor_advances_through_segments():
    cursor = KernelCursor(_kernel(iterations=1))
    consumed = cursor.advance(1000)
    assert consumed == pytest.approx(1000)
    assert cursor.segment_index == 1
    assert cursor.current_phase.name == "b"


def test_cursor_partial_advance():
    cursor = KernelCursor(_kernel())
    cursor.advance(250.5)
    assert cursor.segment_index == 0
    assert cursor.instructions_done == pytest.approx(250.5)
    assert cursor.instructions_remaining_in_segment == pytest.approx(749.5)


def test_cursor_finishes():
    kernel = _kernel(iterations=2)
    cursor = KernelCursor(kernel)
    consumed = cursor.advance(kernel.total_instructions)
    assert consumed == pytest.approx(kernel.total_instructions)
    assert cursor.finished


def test_cursor_overrun_consumes_only_what_exists():
    kernel = _kernel(iterations=1)
    cursor = KernelCursor(kernel)
    consumed = cursor.advance(kernel.total_instructions + 500)
    assert consumed == pytest.approx(kernel.total_instructions)
    assert cursor.finished


def test_finished_cursor_raises_on_phase_access():
    kernel = _kernel(iterations=1)
    cursor = KernelCursor(kernel)
    cursor.advance(kernel.total_instructions)
    with pytest.raises(WorkloadError):
        _ = cursor.current_phase


def test_negative_advance_rejected():
    with pytest.raises(WorkloadError):
        KernelCursor(_kernel()).advance(-1)


def test_global_instructions_done_tracks_cross_segment():
    cursor = KernelCursor(_kernel(iterations=2))
    cursor.advance(1700)  # a(1000) + b(500) + 200 of second a
    assert cursor.global_instructions_done == pytest.approx(1700)


def test_skew_advances_cursor_at_construction():
    cursor = KernelCursor(_kernel(), skew_instructions=100)
    assert cursor.global_instructions_done == pytest.approx(100)


def test_clone_is_independent():
    cursor = KernelCursor(_kernel())
    cursor.advance(300)
    copy = cursor.clone()
    cursor.advance(500)
    assert copy.global_instructions_done == pytest.approx(300)
    assert cursor.global_instructions_done == pytest.approx(800)
