"""Combined report generation."""

import pytest

from repro.errors import ReproError
from repro.evaluation.report import _RESULT_FILES, build_report, write_report
from repro.evaluation.registry import all_experiments


def test_every_registered_artefact_has_a_results_mapping():
    ids = {e.experiment_id for e in all_experiments()}
    # Every artefact-producing experiment must map to a results file.
    assert set(_RESULT_FILES) <= ids
    paper_ids = {e.experiment_id for e in all_experiments()
                 if not e.extension}
    assert paper_ids <= set(_RESULT_FILES)


def test_missing_results_dir_rejected(tmp_path):
    with pytest.raises(ReproError):
        build_report(tmp_path / "missing")


def test_report_with_partial_results(tmp_path):
    results = tmp_path / "results"
    results.mkdir()
    (results / "table2_model.txt").write_text("TABLE2 CONTENT\n")
    report = build_report(results)
    assert "TABLE2 CONTENT" in report
    assert "not yet measured" in report  # others are missing
    assert "paper claim" in report


def test_write_report(tmp_path):
    results = tmp_path / "results"
    results.mkdir()
    (results / "fig4_edp_latency.txt").write_text("FIG4\n")
    out = write_report(results, tmp_path / "sub" / "REPORT.md")
    assert out.exists()
    text = out.read_text()
    assert text.startswith("# SSMDVFS reproduction report")
    assert "FIG4" in text


def test_cli_report_command(tmp_path, capsys):
    from repro.cli import main
    results = tmp_path / "results"
    results.mkdir()
    (results / "hw_asic.txt").write_text("HW\n")
    out = tmp_path / "REPORT.md"
    assert main(["report", "--results", str(results),
                 "--out", str(out)]) == 0
    assert out.exists()
