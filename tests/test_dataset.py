"""DVFSDataset: construction, splits, oracle, serialization."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.datagen.dataset import DVFSDataset
from repro.gpu.counters import COUNTER_NAMES


def test_built_from_real_breakpoints(small_dataset):
    # 4 kernels x 5 breakpoints, each with 6 feature-window variants.
    assert small_dataset.num_groups == 20
    assert small_dataset.num_breakpoints == 120
    assert small_dataset.num_samples == 720  # x 6 levels each
    assert small_dataset.num_levels == 6


def test_counter_set_round_trip(small_dataset):
    counters = small_dataset.counter_set(0)
    assert counters.as_vector().tolist() == small_dataset.counters[0].tolist()
    with pytest.raises(DatasetError):
        small_dataset.counter_set(999)


def test_oracle_level_monotone_in_preset(small_dataset):
    for bp in range(small_dataset.num_breakpoints):
        assert (small_dataset.oracle_level(bp, 0.05)
                >= small_dataset.oracle_level(bp, 0.30))


def test_prepare_shapes(small_dataset, small_arch):
    from repro.datagen.dataset import DEFAULT_PRESET_GRID
    names = ("power_per_core", "ipc", "stall_mem_hazard")
    prepared = small_dataset.prepare(names, small_arch.issue_width, seed=0)
    decision_total = (prepared.decision.x_train.shape[0]
                      + prepared.decision.x_test.shape[0])
    assert decision_total == (small_dataset.num_breakpoints
                              * len(DEFAULT_PRESET_GRID))
    calib_total = (prepared.calibrator.x_train.shape[0]
                   + prepared.calibrator.x_test.shape[0])
    assert calib_total == small_dataset.num_samples
    assert prepared.decision.x_train.shape[1] == len(names) + 1
    assert prepared.calibrator.x_train.shape[1] == len(names) + 1
    assert prepared.num_levels == 6


def test_prepare_applied_labeling_matches_samples(small_dataset, small_arch):
    prepared = small_dataset.prepare(("ipc",), small_arch.issue_width,
                                     seed=0, labeling="applied")
    total = (prepared.decision.x_train.shape[0]
             + prepared.decision.x_test.shape[0])
    assert total == small_dataset.num_samples


def test_prepare_rejects_unknown_labeling(small_dataset, small_arch):
    with pytest.raises(DatasetError):
        small_dataset.prepare(("ipc",), small_arch.issue_width,
                              labeling="nonsense")


def test_minimal_labels_monotone_in_preset(small_dataset):
    for record in range(0, small_dataset.num_breakpoints, 7):
        assert (small_dataset.minimal_level_for_record(record, 0.02)
                >= small_dataset.minimal_level_for_record(record, 0.25))


def test_prepare_splits_by_physical_breakpoint(small_dataset, small_arch):
    """Test rows must be whole physical breakpoints (6 window variants x
    8 grid presets = 48 decision rows each), else labels leak."""
    prepared = small_dataset.prepare(("ipc",), small_arch.issue_width, seed=1)
    assert prepared.decision.x_test.shape[0] % 48 == 0


def test_prepare_scaling_applied(small_dataset, small_arch):
    prepared = small_dataset.prepare(("ipc", "power_per_core"),
                                     small_arch.issue_width, seed=0)
    means = prepared.decision.x_train.mean(axis=0)
    assert np.all(np.abs(means) < 0.5)  # roughly centred


def test_calibrator_targets_are_throughput_ratios(small_dataset, small_arch):
    ratios = small_dataset.throughput_ratios()
    assert ratios.min() >= 0.0
    assert 0.3 < np.median(ratios) < 3.0  # scale-free, O(1) targets
    prepared = small_dataset.prepare(("ipc",), small_arch.issue_width, seed=0)
    total = (prepared.calibrator.y_train.shape[0]
             + prepared.calibrator.y_test.shape[0])
    assert total == ratios.shape[0]


def test_prepare_rejects_bad_fraction(small_dataset, small_arch):
    with pytest.raises(DatasetError):
        small_dataset.prepare(("ipc",), small_arch.issue_width,
                              test_fraction=0.0)


def test_save_load_round_trip(small_dataset, tmp_path):
    path = tmp_path / "ds.npz"
    small_dataset.save(path)
    loaded = DVFSDataset.load(path)
    assert loaded.num_breakpoints == small_dataset.num_breakpoints
    assert np.allclose(loaded.counters, small_dataset.counters)
    assert loaded.kernel_names == small_dataset.kernel_names
    assert np.allclose(loaded.sample_loss, small_dataset.sample_loss)


def test_load_missing_file():
    with pytest.raises(DatasetError):
        DVFSDataset.load("/nonexistent/ds.npz")


def test_constructor_validation():
    good = np.zeros((2, len(COUNTER_NAMES)))
    with pytest.raises(DatasetError):
        DVFSDataset(np.zeros((2, 3)), ["a", "b"], np.array([0]),
                    np.array([0]), np.array([0.0]), np.array([0.0]))
    with pytest.raises(DatasetError):
        DVFSDataset(good, ["a"], np.array([0]), np.array([0]),
                    np.array([0.0]), np.array([0.0]))
    with pytest.raises(DatasetError):
        DVFSDataset(good, ["a", "b"], np.array([5]), np.array([0]),
                    np.array([0.0]), np.array([0.0]))


def test_losses_have_learnable_spread(small_dataset):
    """Sanity: the task is non-trivial (losses vary across levels)."""
    losses = small_dataset.sample_loss
    assert losses.max() > 0.15
    assert losses.min() < 0.02
