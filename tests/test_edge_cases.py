"""Targeted edge cases across subsystems."""

import pytest

from repro.errors import ConfigError, SimulationError
from repro.gpu.arch import small_test_config, titan_x_config
from repro.gpu.counters import CounterSet
from repro.gpu.interval_model import solve_throughput
from repro.gpu.kernels import KernelProfile
from repro.gpu.phases import Phase, compute_phase, make_mix
from repro.gpu.simulator import GPUSimulator
from repro.power.model import PowerModel
from repro.core.policy import StaticPolicy
from repro.units import us


def test_power_model_scaled_for_validation():
    with pytest.raises(ConfigError):
        PowerModel.scaled_for(0)
    scaled = PowerModel.scaled_for(12)
    assert scaled.config.uncore_static_w == pytest.approx(28.0 * 12 / 24)


def test_single_cluster_gpu(small_arch):
    import dataclasses
    arch = dataclasses.replace(small_arch, num_clusters=1)
    kernel = KernelProfile("edge.k", [compute_phase("c", 100_000, warps=16)],
                           iterations=2)
    result = GPUSimulator(arch, kernel, seed=1).run(StaticPolicy(5),
                                                    keep_records=True)
    assert result.time_s > 0
    assert all(len(r.levels) == 1 for r in result.records)


def test_kernel_shorter_than_one_epoch(small_arch):
    """A kernel that drains inside its first epoch must finish cleanly
    with the truncated final-epoch accounting."""
    kernel = KernelProfile("edge.tiny",
                           [compute_phase("c", 2_000, warps=16)],
                           iterations=1)
    simulator = GPUSimulator(small_arch, kernel, seed=1)
    result = simulator.run(StaticPolicy(5), keep_records=True)
    assert result.epochs == 1
    assert result.records[0].all_finished
    assert 0 < result.time_s < us(10)


def test_zero_memory_phase_runs():
    """A phase with no memory instructions at all must still solve."""
    mix = make_mix(fp32=0.7, branch=0.1, sync=0.02)
    phase = Phase(name="nomem", instructions=10_000, mix=mix,
                  cpi_exec=1.5, active_warps=32)
    arch = titan_x_config()
    solution = solve_throughput(arch, phase, arch.default_frequency_hz)
    assert solution.ipc > 0
    assert solution.stall_mem_total >= 0
    assert solution.bandwidth_utilization == 0.0


def test_one_warp_phase():
    phase = compute_phase("c", 1_000, warps=1)
    arch = titan_x_config()
    solution = solve_throughput(arch, phase, arch.default_frequency_hz)
    assert 0 < solution.ipc < 1.0  # single warp cannot fill the issue


def test_counterset_average_single():
    counters = CounterSet({"ipc": 2.0})
    assert CounterSet.average([counters])["ipc"] == pytest.approx(2.0)


def test_simulator_epoch_index_advances(small_arch):
    kernel = KernelProfile("edge.idx",
                           [compute_phase("c", 200_000, warps=16)],
                           iterations=3)
    simulator = GPUSimulator(small_arch, kernel, seed=2)
    first = simulator.step_epoch()
    second = simulator.step_epoch()
    assert (first.index, second.index) == (0, 1)
    assert second.start_time_s == pytest.approx(first.end_time_s)


def test_run_until_instructions_guard(small_arch):
    kernel = KernelProfile("edge.guard",
                           [compute_phase("c", 100_000, warps=16)],
                           iterations=1)
    simulator = GPUSimulator(small_arch, kernel, seed=3)
    # Mark far beyond the kernel: must stop at completion, not loop.
    simulator.run_until_instructions(10 ** 12)
    assert simulator.finished


def test_negative_epoch_energy_rejected():
    from repro.power.energy import EnergyAccount
    account = EnergyAccount()
    with pytest.raises(SimulationError):
        account.add(1.0, -0.1)


def test_epoch_record_end_time(small_arch):
    kernel = KernelProfile("edge.t", [compute_phase("c", 200_000, warps=16)],
                           iterations=2)
    simulator = GPUSimulator(small_arch, kernel, seed=4, epoch_s=us(5))
    record = simulator.step_epoch()
    assert record.duration_s == pytest.approx(us(5))
    assert record.end_time_s == pytest.approx(us(5))
