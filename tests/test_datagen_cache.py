"""On-disk dataset cache."""

import pytest

from repro.datagen.cache import cached_dataset, dataset_cache_key
from repro.datagen.protocol import ProtocolConfig
from repro.gpu.kernels import KernelProfile
from repro.gpu.phases import balanced_phase


def _kernels(instructions=120_000):
    return [KernelProfile("cache.k",
                          [balanced_phase("b", instructions)],
                          iterations=30, jitter=0.05)]


CFG = ProtocolConfig(max_breakpoints_per_kernel=2, seed=7)


def test_key_is_stable(small_arch):
    a = dataset_cache_key(_kernels(), small_arch, CFG)
    b = dataset_cache_key(_kernels(), small_arch, CFG)
    assert a == b


def test_key_changes_with_seed(small_arch):
    other = ProtocolConfig(max_breakpoints_per_kernel=2, seed=8)
    assert (dataset_cache_key(_kernels(), small_arch, CFG)
            != dataset_cache_key(_kernels(), small_arch, other))


def test_key_changes_with_kernel_content(small_arch):
    assert (dataset_cache_key(_kernels(120_000), small_arch, CFG)
            != dataset_cache_key(_kernels(160_000), small_arch, CFG))


def test_key_changes_with_breakpoints(small_arch):
    other = ProtocolConfig(max_breakpoints_per_kernel=3, seed=7)
    assert (dataset_cache_key(_kernels(), small_arch, CFG)
            != dataset_cache_key(_kernels(), small_arch, other))


def test_cache_miss_then_hit(tmp_path, small_arch):
    first = cached_dataset(tmp_path, _kernels(), small_arch, CFG)
    files = list(tmp_path.glob("dvfs-*.npz"))
    assert len(files) == 1
    mtime = files[0].stat().st_mtime_ns
    second = cached_dataset(tmp_path, _kernels(), small_arch, CFG)
    assert files[0].stat().st_mtime_ns == mtime  # not regenerated
    assert second.num_samples == first.num_samples
    assert second.num_groups == first.num_groups


def test_cache_creates_directory(tmp_path, small_arch):
    nested = tmp_path / "a" / "b"
    cached_dataset(nested, _kernels(), small_arch, CFG)
    assert any(nested.glob("dvfs-*.npz"))
