"""V/f operating-point table."""

import pytest

from repro.errors import ConfigError
from repro.gpu.vf import OperatingPoint, VFTable, titan_x_vf_table
from repro.units import mhz


def test_titan_x_has_six_points():
    table = titan_x_vf_table()
    assert table.num_levels == 6


def test_titan_x_matches_paper_endpoints():
    table = titan_x_vf_table()
    assert table[0].voltage_v == pytest.approx(1.0)
    assert table[0].frequency_mhz == pytest.approx(683)
    assert table[5].voltage_v == pytest.approx(1.155)
    assert table[5].frequency_mhz == pytest.approx(1165)


def test_default_level_is_highest():
    table = titan_x_vf_table()
    assert table.default_level == 5
    assert table.min_level == 0


def test_frequencies_strictly_increase():
    freqs = titan_x_vf_table().frequencies_hz()
    assert all(b > a for a, b in zip(freqs, freqs[1:]))


def test_level_out_of_range_raises():
    table = titan_x_vf_table()
    with pytest.raises(ConfigError):
        table[6]
    with pytest.raises(ConfigError):
        table[-1]


def test_clamp():
    table = titan_x_vf_table()
    assert table.clamp(-3) == 0
    assert table.clamp(99) == 5
    assert table.clamp(2) == 2


def test_level_of_frequency():
    table = titan_x_vf_table()
    assert table.level_of_frequency(mhz(878)) == 2
    with pytest.raises(ConfigError):
        table.level_of_frequency(mhz(900))


def test_relative_speed():
    table = titan_x_vf_table()
    assert table.relative_speed(5) == pytest.approx(1.0)
    assert table.relative_speed(0) == pytest.approx(683 / 1165)


def test_non_monotone_frequency_rejected():
    with pytest.raises(ConfigError):
        VFTable([OperatingPoint(1.0, mhz(800)), OperatingPoint(1.1, mhz(700))])


def test_decreasing_voltage_rejected():
    with pytest.raises(ConfigError):
        VFTable([OperatingPoint(1.1, mhz(700)), OperatingPoint(1.0, mhz(800))])


def test_single_point_table_rejected():
    with pytest.raises(ConfigError):
        VFTable([OperatingPoint(1.0, mhz(683))])


def test_negative_voltage_rejected():
    with pytest.raises(ConfigError):
        OperatingPoint(-1.0, mhz(683))


def test_iteration_yields_all_points():
    table = titan_x_vf_table()
    assert len(list(table)) == len(table) == 6
