"""On-disk sweep cache for the layer-wise and pruning campaigns."""

import json

import numpy as np
import pytest

from repro.nn.compress import (ArchitectureSpec, SplitData, layer_wise_sweep,
                               pair_fingerprint, pruning_sweep,
                               split_fingerprint, sweep_cache_key, train_pair)
from repro.nn.trainer import TrainConfig
from repro.parallel import CampaignStats


@pytest.fixture(scope="module")
def splits():
    rng = np.random.default_rng(0)
    xd = rng.normal(size=(80, 5))
    yd = (xd.sum(axis=1) > 0).astype(np.int64)
    xr = rng.normal(size=(80, 5))
    yr = xr @ rng.normal(size=5)
    return (SplitData(xd[:60], yd[:60], xd[60:], yd[60:]),
            SplitData(xr[:60], yr[:60], xr[60:], yr[60:]))


SPECS = [ArchitectureSpec((8,), (6,)), ArchitectureSpec((6,), (4,))]
CFG = TrainConfig(epochs=6, patience=3, seed=1)


def test_key_is_stable():
    payload = {"kind": "layerwise", "seed": 3, "config": {"epochs": 5}}
    assert sweep_cache_key(payload) == sweep_cache_key(dict(payload))


def test_key_changes_with_content():
    payload = {"kind": "layerwise", "seed": 3}
    assert sweep_cache_key(payload) != sweep_cache_key(
        {**payload, "seed": 4})
    assert sweep_cache_key(payload) != sweep_cache_key(
        {**payload, "kind": "pruning"})


def test_split_fingerprint_tracks_data(splits):
    decision_data, _ = splits
    assert (split_fingerprint(decision_data)
            == split_fingerprint(decision_data))
    perturbed = SplitData(decision_data.x_train + 1e-9,
                          decision_data.y_train, decision_data.x_test,
                          decision_data.y_test)
    assert split_fingerprint(decision_data) != split_fingerprint(perturbed)


def test_pair_fingerprint_tracks_weights(splits):
    decision_data, calibrator_data = splits
    pair = train_pair(SPECS[0], decision_data, calibrator_data, 2, CFG)
    key = pair_fingerprint(pair)
    assert key == pair_fingerprint(pair)
    pair.decision.layers[0].weights[0, 0] += 1.0
    assert pair_fingerprint(pair) != key


def test_layerwise_miss_then_hit(tmp_path, splits):
    decision_data, calibrator_data = splits
    stats = CampaignStats()
    first = layer_wise_sweep(decision_data, calibrator_data, 2, SPECS, CFG,
                             stats=stats, cache_dir=tmp_path)
    assert stats.counter("sweep_cache_miss") == len(SPECS)
    assert stats.counter("sweep_cache_hit") == 0
    assert stats.counter("train_models") == 2 * len(SPECS)
    files = sorted(tmp_path.glob("sweep-*.json"))
    assert len(files) == len(SPECS)
    mtimes = [f.stat().st_mtime_ns for f in files]

    stats = CampaignStats()
    second = layer_wise_sweep(decision_data, calibrator_data, 2, SPECS, CFG,
                              stats=stats, cache_dir=tmp_path)
    assert stats.counter("sweep_cache_hit") == len(SPECS)
    assert stats.counter("sweep_cache_miss") == 0
    assert stats.counter("train_models") == 0
    assert [f.stat().st_mtime_ns for f in files] == mtimes  # untouched
    assert second == first


def test_layerwise_cache_matches_uncached(tmp_path, splits):
    decision_data, calibrator_data = splits
    plain = layer_wise_sweep(decision_data, calibrator_data, 2, SPECS, CFG)
    cached = layer_wise_sweep(decision_data, calibrator_data, 2, SPECS, CFG,
                              cache_dir=tmp_path)
    reloaded = layer_wise_sweep(decision_data, calibrator_data, 2, SPECS,
                                CFG, cache_dir=tmp_path)
    assert cached == plain
    assert reloaded == plain


def test_corrupt_cache_is_counted_miss(tmp_path, splits):
    decision_data, calibrator_data = splits
    first = layer_wise_sweep(decision_data, calibrator_data, 2, SPECS, CFG,
                             cache_dir=tmp_path)
    for path in tmp_path.glob("sweep-*.json"):
        path.write_text("{ not json")
    stats = CampaignStats()
    second = layer_wise_sweep(decision_data, calibrator_data, 2, SPECS, CFG,
                              stats=stats, cache_dir=tmp_path)
    assert stats.counter("sweep_cache_corrupt") == len(SPECS)
    assert stats.counter("sweep_cache_miss") == len(SPECS)
    assert second == first  # retrained, not crashed
    # Valid payloads were rewritten in place.
    for path in tmp_path.glob("sweep-*.json"):
        json.loads(path.read_text())


def test_use_cache_false_refreshes(tmp_path, splits):
    decision_data, calibrator_data = splits
    layer_wise_sweep(decision_data, calibrator_data, 2, SPECS, CFG,
                     cache_dir=tmp_path)
    stats = CampaignStats()
    layer_wise_sweep(decision_data, calibrator_data, 2, SPECS, CFG,
                     stats=stats, cache_dir=tmp_path, use_cache=False)
    assert stats.counter("sweep_cache_hit") == 0
    assert stats.counter("sweep_cache_miss") == len(SPECS)


def test_cache_creates_directory(tmp_path, splits):
    decision_data, calibrator_data = splits
    nested = tmp_path / "a" / "b"
    layer_wise_sweep(decision_data, calibrator_data, 2, SPECS[:1], CFG,
                     cache_dir=nested)
    assert any(nested.glob("sweep-*.json"))


def test_key_tracks_data_and_seed(tmp_path, splits):
    """A different seed must train fresh points, not reuse cached ones."""
    decision_data, calibrator_data = splits
    layer_wise_sweep(decision_data, calibrator_data, 2, SPECS[:1], CFG,
                     cache_dir=tmp_path)
    stats = CampaignStats()
    layer_wise_sweep(decision_data, calibrator_data, 2, SPECS[:1], CFG,
                     seed=99, stats=stats, cache_dir=tmp_path)
    assert stats.counter("sweep_cache_miss") == 1


def test_pruning_sweep_cache(tmp_path, splits):
    decision_data, calibrator_data = splits
    pair = train_pair(SPECS[0], decision_data, calibrator_data, 2, CFG)
    grid = [(0.4, 0.7), (0.6, 0.9)]
    finetune = TrainConfig(epochs=4, patience=2, learning_rate=5e-4)
    stats = CampaignStats()
    first = pruning_sweep(pair, decision_data, calibrator_data, grid,
                          finetune, stats=stats, cache_dir=tmp_path)
    assert stats.counter("sweep_cache_miss") == len(grid)
    stats = CampaignStats()
    second = pruning_sweep(pair, decision_data, calibrator_data, grid,
                           finetune, stats=stats, cache_dir=tmp_path)
    assert stats.counter("sweep_cache_hit") == len(grid)
    assert second == first
    # A retrained base pair must invalidate the cached pruning curve.
    pair.decision.layers[0].weights += 0.01
    stats = CampaignStats()
    pruning_sweep(pair, decision_data, calibrator_data, grid, finetune,
                  stats=stats, cache_dir=tmp_path)
    assert stats.counter("sweep_cache_miss") == len(grid)
