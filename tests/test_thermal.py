"""RC thermal model with leakage feedback."""

import math

import pytest

from repro.errors import ConfigError
from repro.gpu.kernels import KernelProfile
from repro.gpu.phases import compute_phase
from repro.gpu.simulator import GPUSimulator
from repro.power.thermal import (ThermalConfig, ThermalNode, ThermalTracker,
                                 run_with_thermal)
from repro.core.policy import StaticPolicy


def test_config_validation():
    with pytest.raises(ConfigError):
        ThermalConfig(resistance_c_per_w=0)
    with pytest.raises(ConfigError):
        ThermalConfig(capacitance_j_per_c=-1)
    with pytest.raises(ConfigError):
        ThermalConfig(max_temperature_c=10.0, ambient_c=45.0)


def test_node_starts_at_ambient():
    node = ThermalNode()
    assert node.temperature_c == pytest.approx(ThermalConfig().ambient_c)


def test_steady_state_formula():
    node = ThermalNode()
    assert node.steady_state_c(10.0) == pytest.approx(45.0 + 10.0 * 4.0)
    with pytest.raises(ConfigError):
        node.steady_state_c(-1.0)


def test_step_converges_to_steady_state():
    node = ThermalNode()
    for _ in range(1000):
        node.step(5.0, dt_s=1e-3)
    assert node.temperature_c == pytest.approx(node.steady_state_c(5.0),
                                               rel=1e-3)


def test_step_exact_exponential():
    config = ThermalConfig()
    node = ThermalNode(config)
    target = node.steady_state_c(8.0)
    start = node.temperature_c
    dt = config.time_constant_s  # one time constant
    node.step(8.0, dt)
    expected = target + (start - target) * math.exp(-1.0)
    assert node.temperature_c == pytest.approx(expected)


def test_long_step_is_stable():
    node = ThermalNode()
    node.step(20.0, dt_s=100.0)  # >> time constant
    assert node.temperature_c == pytest.approx(node.steady_state_c(20.0))


def test_temperature_clamped_at_max():
    config = ThermalConfig(max_temperature_c=80.0)
    node = ThermalNode(config)
    node.step(1000.0, dt_s=10.0)
    assert node.temperature_c == pytest.approx(80.0)


def test_peak_tracking():
    node = ThermalNode()
    node.step(20.0, dt_s=0.01)
    hot = node.temperature_c
    node.step(0.0, dt_s=10.0)  # cool back down
    assert node.peak_c == pytest.approx(hot)
    assert node.temperature_c < hot


def test_leakage_multiplier_grows_with_temperature():
    node = ThermalNode()
    cold = node.leakage_multiplier()
    node.step(30.0, dt_s=10.0)
    assert node.leakage_multiplier() > cold


def test_leakage_multiplier_is_one_at_reference():
    config = ThermalConfig()
    node = ThermalNode(config, initial_c=config.reference_c)
    assert node.leakage_multiplier() == pytest.approx(1.0)


def test_tracker_validation():
    with pytest.raises(ConfigError):
        ThermalTracker(0)
    tracker = ThermalTracker(2)
    with pytest.raises(ConfigError):
        tracker.step_epoch([1.0], [0.1], 1e-5)
    with pytest.raises(ConfigError):
        tracker.step_epoch([1.0, -1.0], [0.1, 0.1], 1e-5)


def test_tracker_extra_energy_nonnegative_when_hot():
    tracker = ThermalTracker(2)
    total = 0.0
    for _ in range(2000):
        total += tracker.step_epoch([12.0, 12.0], [1.0, 1.0], 1e-5)
    assert tracker.peak_temperature_c > ThermalConfig().ambient_c + 10
    assert total > 0.0


def test_run_with_thermal_integrates(small_arch):
    kernel = KernelProfile(
        "th.compute", [compute_phase("c", 120_000, warps=24)],
        iterations=10, jitter=0.05)
    plain = GPUSimulator(small_arch, kernel, seed=3).run(
        StaticPolicy(5), keep_records=False)
    thermal_sim = GPUSimulator(small_arch, kernel, seed=3)
    result, tracker = run_with_thermal(thermal_sim, StaticPolicy(5))
    # Same work, same time; the leakage correction shifts energy by a
    # bounded amount (negative while the die is below the 60 C
    # reference the base power model assumes, positive above it).
    assert result.time_s == pytest.approx(plain.time_s)
    assert result.energy_j == pytest.approx(plain.energy_j, rel=0.10)
    assert result.energy_j != pytest.approx(plain.energy_j, rel=1e-9)
    assert tracker.peak_temperature_c > ThermalConfig().ambient_c


def test_thermal_lower_vf_runs_cooler(small_arch):
    kernel = KernelProfile(
        "th.compute2", [compute_phase("c", 120_000, warps=24)],
        iterations=10, jitter=0.05)
    _, hot = run_with_thermal(GPUSimulator(small_arch, kernel, seed=3),
                              StaticPolicy(5))
    _, cool = run_with_thermal(GPUSimulator(small_arch, kernel, seed=3),
                               StaticPolicy(0))
    assert cool.peak_temperature_c < hot.peak_temperature_c
