"""Experiment result containers (synthetic inputs, no simulation)."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.evaluation.experiments import (Fig3Result, Fig4Result,
                                          HardwareResult, Table2Result)
from repro.evaluation.runner import ComparisonResult, PolicyRun
from repro.hardware.asic import ASICReport
from repro.nn.compress import CompressionPoint, TrainedPair
from repro.nn.mlp import MLP
from repro.units import us


def _pair(acc, mape_value, sizes=(6, 12, 6)):
    rng = np.random.default_rng(0)
    return TrainedPair(decision=MLP(list(sizes), rng=rng),
                       calibrator=MLP([7, 11, 1], rng=rng),
                       accuracy_pct=acc, mape_pct=mape_value)


# ---------------------------------------------------------------------------
# Table II
# ---------------------------------------------------------------------------

def test_table2_compression_math():
    result = Table2Result(base=_pair(70.0, 3.4, sizes=(6, 20, 20, 6)),
                          pruned=_pair(67.0, 4.6))
    assert result.flops_before > result.flops_after
    assert 0 < result.compression_pct < 100
    text = result.render()
    assert "Table II" in text
    assert "94.74" in text  # paper reference inlined


# ---------------------------------------------------------------------------
# Fig. 3
# ---------------------------------------------------------------------------

def _point(method, flops, acc, sparsity=0.0):
    return CompressionPoint(label=f"{method}{flops}", method=method,
                            flops=flops, accuracy_pct=acc, mape_pct=5.0,
                            decision_sizes=(6, 4, 6),
                            calibrator_sizes=(7, 4, 1), sparsity=sparsity)


def test_fig3_knee_and_competitiveness():
    result = Fig3Result(
        layerwise=[_point("layerwise", 100, 60.0),
                   _point("layerwise", 500, 90.0),
                   _point("layerwise", 2000, 91.0)],
        pruning=[_point("pruning", 150, 55.0, sparsity=0.8),
                 _point("pruning", 600, 89.5, sparsity=0.5)],
    )
    assert result.knee_flops(accuracy_drop_pp=5.0) == 500
    assert result.has_knee()
    assert result.pruning_competitive(tolerance_pp=4.0)
    assert not result.pruning_competitive(tolerance_pp=0.5)
    assert "Fig. 3" in result.render()


def test_fig3_dominance_check():
    result = Fig3Result(
        layerwise=[_point("layerwise", 100, 80.0),
                   _point("layerwise", 1000, 90.0)],
        pruning=[_point("pruning", 90, 92.0, sparsity=0.7)],
    )
    assert result.pruning_dominates()


# ---------------------------------------------------------------------------
# Fig. 4
# ---------------------------------------------------------------------------

def _comparison(edps):
    comparison = ComparisonResult(preset=0.10)
    for policy, edp in edps.items():
        comparison.runs.append(PolicyRun(
            policy_name=policy, kernel_name="k", time_s=1e-4,
            energy_j=1e-2, normalized_edp=edp, normalized_latency=1.05,
            epochs=30))
    return comparison


def test_fig4_headline_math():
    result = Fig4Result(comparisons={
        0.10: _comparison({"baseline": 1.0, "pcstall": 0.9,
                           "flemma": 1.1, "ssmdvfs-pruned": 0.85}),
    })
    headline = result.headline()
    assert headline["vs_baseline"] == pytest.approx(0.15)
    assert headline["vs_pcstall"] == pytest.approx(1 - 0.85 / 0.9)
    assert headline["vs_flemma"] == pytest.approx(1 - 0.85 / 1.1)


def test_fig4_headline_falls_back_to_base_variant():
    result = Fig4Result(comparisons={
        0.10: _comparison({"baseline": 1.0, "pcstall": 0.9,
                           "flemma": 1.1, "ssmdvfs": 0.88}),
    })
    assert result.headline()["vs_baseline"] == pytest.approx(0.12)


def test_fig4_empty_rejected():
    with pytest.raises(ReproError):
        Fig4Result().headline()
    with pytest.raises(ReproError):
        Fig4Result().mean_over_presets("edp", "x")


def test_fig4_unknown_metric_rejected():
    result = Fig4Result(comparisons={0.10: _comparison({"baseline": 1.0})})
    with pytest.raises(ReproError):
        result.mean_over_presets("power", "baseline")


# ---------------------------------------------------------------------------
# Hardware
# ---------------------------------------------------------------------------

def test_hardware_result_render():
    report = ASICReport(cycles_per_inference=200, latency_s=0.17e-6,
                        area_mm2_reference=0.03, area_mm2_scaled=0.008,
                        energy_per_inference_j=0.5e-9, power_w_scaled=0.003,
                        node_nm=28, reference_node_nm=65)
    result = HardwareResult(report=report, epoch_s=us(10), gpu_tdp_w=250.0)
    text = result.render()
    assert "Section V-D" in text
    assert "192" in text  # paper reference column
