"""Trainer extras: weight decay, gradient clipping, LR schedule."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.nn.mlp import MLP
from repro.nn.trainer import TrainConfig, _clip_gradients, train_regressor


def _data(n=200, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 3))
    y = x @ np.array([1.0, -1.0, 0.5])
    return x, y


def test_config_validation_extras():
    with pytest.raises(TrainingError):
        TrainConfig(weight_decay=-0.1)
    with pytest.raises(TrainingError):
        TrainConfig(gradient_clip=-1.0)
    with pytest.raises(TrainingError):
        TrainConfig(lr_decay=0.0)
    with pytest.raises(TrainingError):
        TrainConfig(lr_decay=1.5)
    with pytest.raises(TrainingError):
        TrainConfig(lr_step=-1)


def test_weight_decay_shrinks_weight_norm():
    x, y = _data()
    norms = {}
    for decay in (0.0, 0.05):
        model = MLP([3, 16, 1], rng=np.random.default_rng(1))
        train_regressor(model, x, y, TrainConfig(
            epochs=40, patience=40, weight_decay=decay, seed=1))
        norms[decay] = float(np.abs(model.all_weights()).sum())
    assert norms[0.05] < norms[0.0]


def test_weight_decay_still_learns():
    x, y = _data()
    model = MLP([3, 16, 1], rng=np.random.default_rng(2))
    train_regressor(model, x, y, TrainConfig(
        epochs=60, patience=60, weight_decay=1e-4, seed=2))
    pred = model.predict_scalar(x)
    assert np.mean((pred - y) ** 2) / np.var(y) < 0.1


def test_gradient_clipping_scales_global_norm():
    model = MLP([3, 4, 1], rng=np.random.default_rng(3))
    for layer in model.layers:
        layer.grad_weights = np.ones_like(layer.weights) * 10.0
        layer.grad_bias = np.ones_like(layer.bias) * 10.0
    _clip_gradients(model, max_norm=1.0)
    total = sum(float((l.grad_weights ** 2).sum())
                + float((l.grad_bias ** 2).sum()) for l in model.layers)
    assert np.sqrt(total) == pytest.approx(1.0)


def test_gradient_clipping_noop_below_threshold():
    model = MLP([3, 4, 1], rng=np.random.default_rng(4))
    for layer in model.layers:
        layer.grad_weights = np.full_like(layer.weights, 1e-4)
        layer.grad_bias = np.full_like(layer.bias, 1e-4)
    before = model.layers[0].grad_weights.copy()
    _clip_gradients(model, max_norm=100.0)
    assert np.allclose(model.layers[0].grad_weights, before)


def test_training_with_clipping_converges():
    x, y = _data()
    model = MLP([3, 16, 1], rng=np.random.default_rng(5))
    train_regressor(model, x, y, TrainConfig(
        epochs=60, patience=60, gradient_clip=1.0, seed=5))
    pred = model.predict_scalar(x)
    assert np.mean((pred - y) ** 2) / np.var(y) < 0.15


def test_lr_schedule_reduces_learning_rate():
    """After training with a step schedule the optimizer's LR shrank."""
    from repro.nn.trainer import _make_optimizer, fit
    from repro.nn.losses import MeanSquaredError
    x, y = _data(n=80)
    model = MLP([3, 8, 1], rng=np.random.default_rng(6))
    config = TrainConfig(epochs=10, patience=10, lr_step=3, lr_decay=0.5,
                         learning_rate=1e-2, seed=6)
    # fit() constructs its own optimizer internally; verify behaviourally:
    # a decayed schedule must change the final model versus no schedule.
    model_sched = model.clone()
    fit(model_sched, x, y[:, None] if y.ndim == 1 else y,
        MeanSquaredError(), config)
    model_plain = model.clone()
    fit(model_plain, x, y[:, None] if y.ndim == 1 else y,
        MeanSquaredError(),
        TrainConfig(epochs=10, patience=10, learning_rate=1e-2, seed=6))
    assert not np.allclose(model_sched.layers[0].weights,
                           model_plain.layers[0].weights)
