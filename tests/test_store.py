"""Crash-consistent artifact store: atomicity, versioning, corruption.

The crash simulations here are byte-exhaustive: a write is killed at
*every* payload offset (plus the written-but-not-renamed boundary) and
the reader must always observe the old content or the new content in
full — never a torn prefix.  The same property is asserted for every
production writer routed through the shared helper (campaign
checkpoints, evaluation-grid JSON, sweep-point JSON, dataset ``.npz``).
"""

import json
import pickle

import pytest

import repro.datagen.dataset as dataset_module
import repro.evaluation.cache as evaluation_cache
import repro.nn.compress as compress_module
import repro.parallel as parallel_module
from repro.datagen.dataset import DVFSDataset
from repro.errors import ArtifactCorrupt
from repro.nn.compress import _store_cached_point
from repro.parallel import CampaignCheckpoint
from repro.store import (ArtifactStore, SimulatedCrash, atomic_write_bytes,
                         atomic_write_text, sha256_hex)


# ---------------------------------------------------------------------------
# Atomic writer
# ---------------------------------------------------------------------------

def test_atomic_write_roundtrip(tmp_path):
    path = tmp_path / "blob.bin"
    atomic_write_bytes(path, b"hello")
    assert path.read_bytes() == b"hello"
    atomic_write_text(path, "ciao")
    assert path.read_text() == "ciao"
    assert not list(tmp_path.glob("*.tmp*"))


def test_atomic_write_crash_at_every_offset(tmp_path):
    path = tmp_path / "blob.bin"
    old = b"old-content-that-must-survive"
    new = b"replacement-payload-0123456789"
    atomic_write_bytes(path, old)
    # +1 exercises the written-but-not-renamed boundary.
    for offset in range(len(new) + 2):
        with pytest.raises(SimulatedCrash):
            atomic_write_bytes(path, new, crash_after=offset)
        assert path.read_bytes() == old, f"torn read at offset {offset}"
    # Leftover temp files from the kills must not block a clean write.
    atomic_write_bytes(path, new)
    assert path.read_bytes() == new


def test_atomic_write_crash_with_no_previous_file(tmp_path):
    path = tmp_path / "fresh.bin"
    with pytest.raises(SimulatedCrash):
        atomic_write_bytes(path, b"data", crash_after=2)
    assert not path.exists()


# ---------------------------------------------------------------------------
# ArtifactStore semantics
# ---------------------------------------------------------------------------

def test_store_put_get_roundtrip_and_versioning(tmp_path):
    store = ArtifactStore(tmp_path)
    v1 = store.put("pair", b"alpha", schema="test/v1")
    v2 = store.put("pair", b"beta", schema="test/v1", mark_good=True)
    assert (v1, v2) == (1, 2)
    assert store.get("pair") == b"beta"
    assert store.get("pair", v1) == b"alpha"
    assert store.latest_version("pair") == 2
    assert store.last_known_good("pair") == 2
    assert store.names() == ["pair"]
    entries = store.versions("pair")
    assert [e.version for e in entries] == [1, 2]
    assert entries[0].sha256 == sha256_hex(b"alpha")
    assert "pair" in store.render()


def test_store_detects_corruption_and_falls_back(tmp_path):
    store = ArtifactStore(tmp_path)
    store.put("pair", b"good-old", mark_good=True)
    v2 = store.put("pair", b"good-new", mark_good=True)
    # Flip payload bytes of the newest version on disk.
    path = tmp_path / "pair" / f"v{v2:06d}.art"
    blob = bytearray(path.read_bytes())
    blob[-3] ^= 0xFF
    path.write_bytes(bytes(blob))
    assert not store.verify("pair", v2)
    with pytest.raises(ArtifactCorrupt):
        store.get("pair", v2, fallback=False)
    # With fallback the store serves the older verifying version.
    assert store.get("pair") == b"good-old"
    assert store.counters["store_corrupt_reads"] >= 1
    assert store.counters["store_fallbacks"] >= 1


def test_store_missing_artifact_raises(tmp_path):
    store = ArtifactStore(tmp_path)
    with pytest.raises(ArtifactCorrupt):
        store.get("nothing")
    with pytest.raises(ArtifactCorrupt):
        store.get("nothing", 3, fallback=False)


def test_store_rollback_demotes_pointer(tmp_path):
    store = ArtifactStore(tmp_path)
    store.put("pair", b"v1-bytes", mark_good=True)
    store.put("pair", b"v2-bytes", mark_good=True)
    assert store.last_known_good("pair") == 2
    assert store.rollback("pair") == 1
    assert store.last_known_good("pair") == 1
    assert store.get("pair", store.last_known_good("pair")) == b"v1-bytes"


def test_store_manifest_corruption_rebuilds_from_version_files(tmp_path):
    store = ArtifactStore(tmp_path)
    store.put("pair", b"alpha")
    store.put("pair", b"beta")
    (tmp_path / "pair" / "manifest.json").write_text("{not json")
    rebuilt = ArtifactStore(tmp_path)
    assert [e.version for e in rebuilt.versions("pair")] == [1, 2]
    assert rebuilt.get("pair") == b"beta"


def test_store_put_crash_at_every_offset_never_tears(tmp_path):
    store = ArtifactStore(tmp_path)
    store.put("pair", b"committed", mark_good=True)
    payload = b"next-version-payload"
    # The encoded version file = magic + header + payload; kill the
    # write at every offset of the *encoded* length plus the rename
    # boundary.
    encoded_length = len(payload) + 256
    for offset in range(encoded_length):
        with pytest.raises(SimulatedCrash):
            store.put("pair", payload, crash_after=offset)
        survivor = ArtifactStore(tmp_path)  # fresh process after the kill
        assert survivor.get("pair") == b"committed"
        assert survivor.last_known_good("pair") == 1
    after = store.put("pair", payload)
    assert store.get("pair", after) == payload


# ---------------------------------------------------------------------------
# Every production writer goes through the atomic helper
# ---------------------------------------------------------------------------

def _crash_offsets(length, exhaustive_limit=256, samples=32):
    """Every offset for small payloads, an even sample for large ones."""
    boundary = length + 1
    if boundary <= exhaustive_limit:
        return list(range(boundary + 1))
    step = max(1, boundary // samples)
    return sorted({0, boundary, *range(0, boundary, step)})


def _assert_writer_crash_consistent(module, write, read, expected,
                                    payload_length, monkeypatch):
    """Kill ``write`` at byte offsets; ``read()`` must equal ``expected``."""
    real = atomic_write_bytes
    for offset in _crash_offsets(payload_length):
        def crashing(path, data, *, crash_after=None, _offset=offset):
            real(path, data, crash_after=_offset)

        monkeypatch.setattr(module, "atomic_write_bytes", crashing,
                            raising=False)
        if hasattr(module, "atomic_write_text"):
            monkeypatch.setattr(
                module, "atomic_write_text",
                lambda path, text, _c=crashing: _c(path,
                                                   text.encode("utf-8")),
                raising=False)
        with pytest.raises(SimulatedCrash):
            write()
        monkeypatch.undo()
        assert read() == expected, f"torn content at offset {offset}"


def test_campaign_checkpoint_writes_are_atomic(tmp_path, monkeypatch):
    path = tmp_path / "campaign.ckpt"
    ckpt = CampaignCheckpoint(path, key="k")
    ckpt.save({0: "committed"})
    payload_length = len(pickle.dumps({"key": "k", "results": {0: "new"}}))
    _assert_writer_crash_consistent(
        parallel_module,
        write=lambda: CampaignCheckpoint(path, key="k").save({0: "new"}),
        read=lambda: CampaignCheckpoint(path, key="k").load(),
        expected={0: "committed"},
        payload_length=payload_length,
        monkeypatch=monkeypatch)


def test_sweep_point_cache_writes_are_atomic(tmp_path, monkeypatch):
    path = tmp_path / "sweep-abc.json"
    committed = {"spec": [3, 12], "accuracy": 0.9}
    _store_cached_point(path, committed)
    replacement = {"spec": [5, 20], "accuracy": 0.95}
    _assert_writer_crash_consistent(
        compress_module,
        write=lambda: _store_cached_point(path, replacement),
        read=lambda: json.loads(path.read_text()),
        expected=committed,
        payload_length=len(json.dumps(replacement, sort_keys=True)),
        monkeypatch=monkeypatch)


def test_evaluation_grid_cache_writes_are_atomic(tmp_path, monkeypatch):
    path = tmp_path / "grid-abc.json"
    committed = {"preset": 0.1, "runs": []}
    path.write_text(json.dumps(committed))
    replacement = json.dumps({"preset": 0.2, "runs": []})
    _assert_writer_crash_consistent(
        evaluation_cache,
        write=lambda: evaluation_cache.atomic_write_text(path, replacement),
        read=lambda: json.loads(path.read_text()),
        expected=committed,
        payload_length=len(replacement),
        monkeypatch=monkeypatch)


def test_dataset_save_is_atomic(tmp_path, monkeypatch, small_dataset):
    path = tmp_path / "ds.npz"
    small_dataset.save(path)
    committed = path.read_bytes()

    def read_back():
        DVFSDataset.load(path)  # must parse fully, not just exist
        return path.read_bytes()

    _assert_writer_crash_consistent(
        dataset_module,
        write=lambda: small_dataset.save(path),
        read=read_back,
        expected=committed,
        payload_length=len(committed),
        monkeypatch=monkeypatch)


def test_dataset_save_appends_npz_suffix(tmp_path, small_dataset):
    # np.savez historically appended .npz to suffix-less paths; the
    # atomic rewrite must keep that contract for external callers.
    small_dataset.save(tmp_path / "plain")
    assert (tmp_path / "plain.npz").exists()
    loaded = DVFSDataset.load(tmp_path / "plain.npz")
    assert loaded.num_breakpoints == small_dataset.num_breakpoints


# ---------------------------------------------------------------------------
# Retention (prune)
# ---------------------------------------------------------------------------

def _seed_versions(store, name, count, good=None):
    for index in range(count):
        store.put(name, f"payload-{index + 1}".encode(),
                  mark_good=(good == index + 1))


def test_prune_keeps_newest_and_last_known_good(tmp_path):
    store = ArtifactStore(tmp_path)
    _seed_versions(store, "pair", 5, good=1)
    removed = store.prune("pair", keep_last=2)
    assert removed == 2  # v2, v3 gone; v1 (blessed), v4, v5 kept
    versions = [entry.version for entry in store.versions("pair")]
    assert versions == [1, 4, 5]
    assert store.last_known_good("pair") == 1
    assert store.get("pair", 1, fallback=False) == b"payload-1"
    assert store.get("pair", 5, fallback=False) == b"payload-5"
    assert store.counters["store_pruned_versions"] == 2
    files = sorted(p.name for p in (tmp_path / "pair").glob("v*.art"))
    assert files == ["v000001.art", "v000004.art", "v000005.art"]


def test_prune_is_a_noop_when_nothing_to_remove(tmp_path):
    store = ArtifactStore(tmp_path)
    _seed_versions(store, "pair", 2, good=2)
    assert store.prune("pair", keep_last=4) == 0
    assert [e.version for e in store.versions("pair")] == [1, 2]


def test_prune_never_resets_version_numbering(tmp_path):
    store = ArtifactStore(tmp_path)
    _seed_versions(store, "pair", 3, good=3)
    store.prune("pair", keep_last=1)
    assert store.put("pair", b"next") == 4


def test_prune_rejects_zero_retention(tmp_path):
    store = ArtifactStore(tmp_path)
    _seed_versions(store, "pair", 1)
    with pytest.raises(Exception):
        store.prune("pair", keep_last=0)


def test_crash_during_prune_leaves_store_fully_readable(tmp_path):
    store = ArtifactStore(tmp_path)
    _seed_versions(store, "pair", 5, good=5)
    with pytest.raises(SimulatedCrash):
        store.prune("pair", keep_last=2, crash_after=3)
    # The manifest write was killed mid-flight: the old manifest must
    # still be intact, every version still listed and readable, and no
    # version file deleted.
    versions = [entry.version for entry in store.versions("pair")]
    assert versions == [1, 2, 3, 4, 5]
    for version in versions:
        assert store.get("pair", version,
                         fallback=False) == f"payload-{version}".encode()
    # A retried prune after the simulated kill completes normally.
    assert store.prune("pair", keep_last=2) == 3
    assert [e.version for e in store.versions("pair")] == [4, 5]


def test_prune_sweeps_orphans_from_an_interrupted_prune(tmp_path):
    store = ArtifactStore(tmp_path)
    _seed_versions(store, "pair", 3, good=3)
    # Simulate the crash window *between* manifest commit and unlink:
    # a version file exists on disk that no manifest entry references.
    orphan = tmp_path / "pair" / "v000099.art"
    orphan.write_bytes(b"leftover from a crashed prune")
    assert [e.version for e in store.versions("pair")] == [1, 2, 3]
    removed = store.prune("pair", keep_last=3)
    assert removed == 1  # only the orphan: every listed version is kept
    assert not orphan.exists()
    assert [e.version for e in store.versions("pair")] == [1, 2, 3]
