"""MLP structure, forward/backward, neuron removal."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.nn.losses import MeanSquaredError
from repro.nn.mlp import MLP


def _mlp(sizes=(4, 8, 8, 3), seed=0):
    return MLP(list(sizes), rng=np.random.default_rng(seed))


def test_layer_sizes_round_trip():
    model = _mlp((4, 8, 8, 3))
    assert model.layer_sizes == [4, 8, 8, 3]
    assert model.input_size == 4
    assert model.output_size == 3


def test_hidden_relu_output_linear():
    model = _mlp()
    assert all(layer.activation == "relu" for layer in model.layers[:-1])
    assert model.layers[-1].activation == "linear"


def test_forward_shapes():
    model = _mlp()
    assert model.forward(np.ones((7, 4))).shape == (7, 3)
    assert model.forward(np.ones(4)).shape == (1, 3)


def test_too_few_sizes_rejected():
    with pytest.raises(ModelError):
        MLP([5])


def test_nonpositive_size_rejected():
    with pytest.raises(ModelError):
        MLP([4, 0, 3])


def test_num_parameters():
    model = _mlp((4, 8, 3))
    assert model.num_parameters == (4 * 8 + 8) + (8 * 3 + 3)


def test_predict_class_range():
    model = _mlp()
    preds = model.predict_class(np.random.default_rng(1).normal(size=(20, 4)))
    assert preds.shape == (20,)
    assert preds.min() >= 0 and preds.max() < 3


def test_predict_scalar_requires_single_output():
    with pytest.raises(ModelError):
        _mlp((4, 8, 3)).predict_scalar(np.ones((2, 4)))
    scalar_model = _mlp((4, 8, 1))
    assert scalar_model.predict_scalar(np.ones((2, 4))).shape == (2,)


def test_end_to_end_gradient_check():
    """Whole-network backprop vs finite differences through MSE."""
    rng = np.random.default_rng(7)
    model = _mlp((3, 5, 2), seed=7)
    x = rng.normal(size=(4, 3))
    y = rng.normal(size=(4, 2))
    loss_fn = MeanSquaredError()

    out = model.forward(x, train=True)
    _, grad = loss_fn(out, y)
    model.backward(grad)
    layer = model.layers[0]
    analytic = layer.grad_weights.copy()

    eps = 1e-6
    for i in range(3):
        for j in range(5):
            layer.weights[i, j] += eps
            plus, _ = loss_fn(model.forward(x), y)
            layer.weights[i, j] -= 2 * eps
            minus, _ = loss_fn(model.forward(x), y)
            layer.weights[i, j] += eps
            assert analytic[i, j] == pytest.approx(
                (plus - minus) / (2 * eps), abs=1e-5)


def test_clone_independent():
    model = _mlp()
    copy = model.clone()
    copy.layers[0].weights[:] = 0.0
    assert not np.all(model.layers[0].weights == 0.0)


def test_remove_hidden_neurons_keeps_function_of_others():
    model = _mlp((4, 8, 3))
    model.remove_hidden_neurons(0, [2, 5])
    assert model.layer_sizes == [4, 6, 3]
    out = model.forward(np.ones((2, 4)))
    assert out.shape == (2, 3)


def test_remove_output_layer_neurons_rejected():
    model = _mlp((4, 8, 3))
    with pytest.raises(ModelError):
        model.remove_hidden_neurons(1, [0])


def test_removing_dead_neuron_preserves_function():
    """A neuron with all-zero incoming and outgoing ties contributes
    nothing; removing it must not change the network function."""
    model = _mlp((4, 8, 3))
    x = np.random.default_rng(2).normal(size=(6, 4))
    model.layers[0].weights[:, 3] = 0.0
    model.layers[0].bias[3] = 0.0
    before = model.forward(x)
    model.remove_hidden_neurons(0, [3])
    after = model.forward(x)
    assert np.allclose(before, after)


def test_sparsity_property():
    model = _mlp((4, 8, 3))
    assert model.sparsity == 0.0
    model.layers[0].mask[:, 0] = 0.0
    assert model.sparsity > 0.0


def test_all_weights_concatenation():
    model = _mlp((4, 8, 3))
    assert model.all_weights().shape == (4 * 8 + 8 * 3,)
