"""Property-based tests: kernel cursors and random kernel generation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.kernels import KernelCursor
from repro.workloads.generator import random_kernel, random_phase, random_suite


@given(st.integers(0, 2 ** 31 - 1))
@settings(max_examples=100, deadline=None)
def test_random_phase_is_always_valid(seed):
    """The generator must only ever produce validating phases."""
    phase = random_phase(np.random.default_rng(seed))
    assert sum(phase.mix.values()) == pytest.approx(1.0)
    assert phase.cpi_exec >= 1.0
    assert 0.0 <= phase.l1_miss_rate <= 1.0


@given(st.integers(0, 2 ** 31 - 1))
@settings(max_examples=60, deadline=None)
def test_random_kernel_is_always_valid(seed):
    kernel = random_kernel(np.random.default_rng(seed))
    assert kernel.total_instructions > 0
    assert kernel.num_segments == len(kernel.phases) * kernel.iterations


@given(st.integers(0, 2 ** 31 - 1),
       st.lists(st.floats(0.5, 50_000.0), min_size=1, max_size=30))
@settings(max_examples=60, deadline=None)
def test_cursor_chunked_advance_equals_single_advance(seed, chunks):
    """Advancing in arbitrary chunks lands at the same position as one
    big advance — segment-boundary bookkeeping must be exact."""
    kernel = random_kernel(np.random.default_rng(seed))
    total = float(sum(chunks))
    chunked = KernelCursor(kernel)
    for chunk in chunks:
        chunked.advance(chunk)
    single = KernelCursor(kernel)
    single.advance(total)
    assert chunked.global_instructions_done == pytest.approx(
        single.global_instructions_done, rel=1e-9, abs=1e-6)
    assert chunked.segment_index == single.segment_index


@given(st.integers(0, 2 ** 31 - 1))
@settings(max_examples=60, deadline=None)
def test_cursor_consumes_exactly_total(seed):
    kernel = random_kernel(np.random.default_rng(seed))
    cursor = KernelCursor(kernel)
    consumed = cursor.advance(kernel.total_instructions * 2.0)
    assert consumed == pytest.approx(kernel.total_instructions)
    assert cursor.finished


@given(st.integers(0, 2 ** 31 - 1), st.floats(0.0, 1.0))
@settings(max_examples=60, deadline=None)
def test_cursor_clone_divergence(seed, fraction):
    kernel = random_kernel(np.random.default_rng(seed))
    cursor = KernelCursor(kernel)
    cursor.advance(kernel.total_instructions * fraction)
    clone = cursor.clone()
    cursor.advance(1_000.0)
    assert clone.global_instructions_done <= cursor.global_instructions_done


def test_random_suite_deterministic():
    a = random_suite(seed=5, count=4)
    b = random_suite(seed=5, count=4)
    assert [k.total_instructions for k in a] == [
        k.total_instructions for k in b]
    assert [k.name for k in a] == [k.name for k in b]
