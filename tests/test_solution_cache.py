"""Interval-model solution cache: determinism, hits, invalidation.

The tentpole guarantee of the memoised epoch engine is that caching is
*observably free*: every simulated quantity — counter vectors, energy,
instruction counts, datagen labels — is bit-identical with the cache on
and off.  The cache keys capture every solver input exactly, so a hit
can only ever return the solution the solver would have recomputed.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.datagen.protocol import ProtocolConfig, generate_for_kernel
from repro.gpu.arch import small_test_config
from repro.gpu.cluster import step_vector_for
from repro.gpu.interval_model import SolutionCache, solve_throughput
from repro.gpu.kernels import KernelProfile
from repro.gpu.phases import balanced_phase, compute_phase
from repro.gpu.simulator import GPUSimulator
from repro.parallel import CampaignStats

ARCH = small_test_config()
PHASE = balanced_phase("b", 60_000)


def _kernel(jitter=0.08):
    return KernelProfile("cache.k",
                         [balanced_phase("b", 60_000),
                          compute_phase("c", 40_000, warps=16)],
                         iterations=10, jitter=jitter)


def _epoch_stream(use_cache, epochs=8):
    """Forward epochs over several levels, then a snapshot replay.

    The replay re-executes the same workload stretch, which is what
    actually exercises cache hits (a plain forward run with jitter never
    re-solves a position).
    """
    simulator = GPUSimulator(ARCH, _kernel(), seed=3,
                             use_solution_cache=use_cache)
    simulator.set_all_levels(ARCH.vf_table.default_level)
    records = []
    snapshot = simulator.snapshot()
    for replay in range(3):
        simulator.restore(snapshot)
        for index in range(epochs):
            # Exercise several operating points, not just the default.
            simulator.set_all_levels(index % ARCH.vf_table.num_levels)
            if simulator.finished:
                break
            records.append(simulator.step_epoch())
    return records, simulator


# ---------------------------------------------------------------------------
# Bit-identity: cache on vs cache off
# ---------------------------------------------------------------------------

def test_epoch_stream_bit_identical_cache_on_off():
    cached, sim = _epoch_stream(True)
    uncached, _ = _epoch_stream(False)
    assert sim.solution_cache is not None and sim.solution_cache.hits > 0
    assert len(cached) == len(uncached) > 0
    for a, b in zip(cached, uncached):
        assert a.levels == b.levels
        assert a.instructions == b.instructions
        assert a.cluster_energy_j == b.cluster_energy_j
        assert a.uncore_energy_j == b.uncore_energy_j
        assert np.array_equal(a.counters.as_vector(), b.counters.as_vector())
        for ca, cb in zip(a.cluster_counters, b.cluster_counters):
            assert np.array_equal(ca.as_vector(), cb.as_vector())


def test_datagen_bit_identical_cache_on_off():
    base = dict(max_breakpoints_per_kernel=2, seed=7)
    on = generate_for_kernel(_kernel(), ARCH,
                             config=ProtocolConfig(**base))
    off = generate_for_kernel(_kernel(), ARCH,
                              config=ProtocolConfig(
                                  **base, use_solution_cache=False))
    assert len(on) == len(off) > 0
    for a, b in zip(on, off):
        assert a.levels == b.levels
        assert a.losses == b.losses
        assert a.segment_losses == b.segment_losses
        assert a.tf_s == b.tf_s
        assert a.window_instructions == b.window_instructions
        assert np.array_equal(a.feature_counters.as_vector(),
                              b.feature_counters.as_vector())
        for (la, ca), (lb, cb) in zip(a.feature_variants, b.feature_variants):
            assert la == lb
            assert np.array_equal(ca.as_vector(), cb.as_vector())


# ---------------------------------------------------------------------------
# Hit behaviour on the replay protocol
# ---------------------------------------------------------------------------

def test_replay_protocol_hits_dominate():
    stats = CampaignStats()
    config = ProtocolConfig(max_breakpoints_per_kernel=2, seed=7)
    generate_for_kernel(_kernel(), ARCH, config=config, stats=stats)
    hits = stats.counter("solve_cache_hit")
    misses = stats.counter("solve_cache_miss")
    # The 6-point replay re-executes each workload stretch many times
    # over; most solves must come from the cache.
    assert misses > 0
    assert hits > misses
    # The counters flow into the aggregate --stats cache totals.
    assert stats.cache_hits >= hits
    assert "solve_cache_hit" in stats.render()


def test_cache_disabled_reports_no_counters():
    stats = CampaignStats()
    config = ProtocolConfig(max_breakpoints_per_kernel=1, seed=7,
                            use_solution_cache=False)
    generate_for_kernel(_kernel(), ARCH, config=config, stats=stats)
    assert stats.counter("solve_cache_hit") == 0
    assert stats.counter("solve_cache_miss") == 0


def test_snapshot_replay_hits_without_jitter():
    # sigma = 0 collapses the noise multipliers to (1, 1, 1): a replayed
    # epoch is served entirely from the cache.
    simulator = GPUSimulator(ARCH, _kernel(jitter=0.0), seed=3)
    simulator.set_all_levels(ARCH.vf_table.default_level)
    simulator.step_epoch()
    cache = simulator.solution_cache
    snapshot = simulator.snapshot()
    first = simulator.step_epoch()
    misses_before = cache.misses
    simulator.restore(snapshot)
    second = simulator.step_epoch()
    assert cache.misses == misses_before
    assert np.array_equal(first.counters.as_vector(),
                          second.counters.as_vector())


# ---------------------------------------------------------------------------
# Key derivation and invalidation
# ---------------------------------------------------------------------------

def test_hit_returns_identical_solution_and_payload():
    cache = SolutionCache(payload_builder=step_vector_for)
    args = (ARCH, PHASE, 1.0e9, 1.0, 1.0, 1.0)
    solution_a, payload_a = cache.solve(*args)
    solution_b, payload_b = cache.solve(*args)
    assert solution_a is solution_b
    assert payload_a is payload_b
    assert cache.hits == 1 and cache.misses == 1
    assert np.array_equal(payload_a,
                          step_vector_for(ARCH, PHASE, solution_a))
    reference = solve_throughput(ARCH, PHASE, 1.0e9)
    assert solution_a == reference


def test_distinct_inputs_never_alias():
    cache = SolutionCache()
    variants = [
        (ARCH, PHASE, 1.0e9, 1.0, 1.0, 1.0),
        (ARCH, PHASE, 1.2e9, 1.0, 1.0, 1.0),           # frequency
        (ARCH, PHASE, 1.0e9, 1.05, 1.0, 1.0),          # warp multiplier
        (ARCH, PHASE, 1.0e9, 1.0, 0.95, 1.0),          # miss multiplier
        (ARCH, PHASE, 1.0e9, 1.0, 1.0, 1.01),          # cpi multiplier
        (ARCH, compute_phase("c", 40_000, warps=16),   # phase
         1.0e9, 1.0, 1.0, 1.0),
        (replace(ARCH, issue_width=2.0), PHASE,
         1.0e9, 1.0, 1.0, 1.0),                        # architecture
    ]
    solutions = [cache.solve(*v)[0] for v in variants]
    assert cache.misses == len(variants) and cache.hits == 0
    for variant, solution in zip(variants, solutions):
        arch, phase, freq, warp_m, miss_m, cpi_m = variant
        assert solution == solve_throughput(
            arch, phase, freq, warp_multiplier=warp_m,
            miss_multiplier=miss_m, cpi_multiplier=cpi_m)


def test_equal_valued_arch_objects_share_entries():
    # Keys derive from the solver-relevant *fields*, not object identity,
    # so a second arch object with identical values hits.
    cache = SolutionCache()
    cache.solve(small_test_config(), PHASE, 1.0e9, 1.0, 1.0, 1.0)
    cache.solve(small_test_config(), PHASE, 1.0e9, 1.0, 1.0, 1.0)
    assert cache.hits == 1 and cache.misses == 1


def test_eviction_clears_and_counts():
    cache = SolutionCache(max_entries=2)
    for index in range(3):
        cache.solve(ARCH, PHASE, 1.0e9 + index * 1e7, 1.0, 1.0, 1.0)
    assert cache.evictions == 2  # both resident entries were flushed
    assert len(cache) == 1  # flushed at capacity, then one fresh entry
    assert cache.misses == 3
    # A re-solve of a flushed key misses again but stays correct.
    solution, _ = cache.solve(ARCH, PHASE, 1.0e9, 1.0, 1.0, 1.0)
    assert solution == solve_throughput(ARCH, PHASE, 1.0e9)


def test_invalid_max_entries_rejected():
    from repro.errors import SimulationError
    with pytest.raises(SimulationError):
        SolutionCache(max_entries=0)


def test_hit_rate_accounting():
    cache = SolutionCache()
    assert cache.hit_rate == 0.0
    cache.solve(ARCH, PHASE, 1.0e9, 1.0, 1.0, 1.0)
    cache.solve(ARCH, PHASE, 1.0e9, 1.0, 1.0, 1.0)
    cache.solve(ARCH, PHASE, 1.1e9, 1.0, 1.0, 1.0)
    assert cache.lookups == 3
    assert cache.hit_rate == pytest.approx(1.0 / 3.0)
