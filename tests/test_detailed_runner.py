"""Cross-substrate policy runner (detailed per-cycle model)."""

import pytest

from repro.errors import SimulationError
from repro.gpu.detailed.runner import DetailedClusterRunner
from repro.gpu.detailed.sm import DetailedSM
from repro.gpu.kernels import KernelProfile
from repro.gpu.phases import compute_phase, memory_phase
from repro.core.policy import StaticPolicy


def _mem_kernel(instructions=60_000):
    return KernelProfile(
        "dr.mem", [memory_phase("m", instructions, warps=48, l1_miss=0.9,
                                l2_miss=0.9)], iterations=1)


def _cmp_kernel(instructions=60_000):
    return KernelProfile(
        "dr.cmp", [compute_phase("c", instructions, warps=16)], iterations=1)


def test_runner_validation(small_arch):
    with pytest.raises(SimulationError):
        DetailedClusterRunner(small_arch, _mem_kernel(), epoch_cycles=0)


def test_sm_windows_continue_the_clock(small_arch):
    """Consecutive run() windows must keep executing (absolute clock)."""
    sm = DetailedSM(small_arch, _cmp_kernel().phases[0], 1165e6, seed=1)
    first = sm.run(2000)
    second = sm.run(2000)
    assert second.instructions > first.instructions * 0.5


def test_sm_window_stats_are_per_window(small_arch):
    sm = DetailedSM(small_arch, _mem_kernel().phases[0], 1165e6, seed=1)
    first = sm.run(2000)
    second = sm.run(2000)
    # Cache stats must be window-local, not cumulative.
    assert second.l1_accesses < first.l1_accesses * 3


def test_static_run_completes_instruction_budget(small_arch):
    runner = DetailedClusterRunner(small_arch, _cmp_kernel(), seed=2)
    result = runner.run(StaticPolicy(5), max_epochs=200)
    assert result.instructions >= 60_000 * 0.95
    assert set(result.levels) == {5}
    assert result.time_s > 0 and result.energy_j > 0


def test_lower_level_same_work_less_energy_on_memory(small_arch):
    """The substrate physics carries over: a BW-capped kernel at the
    lowest point finishes the same work with less energy."""
    hi = DetailedClusterRunner(small_arch, _mem_kernel(), seed=3).run(
        StaticPolicy(5), max_epochs=300)
    lo = DetailedClusterRunner(small_arch, _mem_kernel(), seed=3).run(
        StaticPolicy(0), max_epochs=300)
    assert lo.instructions == pytest.approx(hi.instructions, rel=0.1)
    assert lo.energy_j < hi.energy_j * 0.9
    assert lo.time_s < hi.time_s * 1.25


def test_controller_transfers_to_detailed_substrate(small_pipeline,
                                                    small_arch):
    """The headline transfer check: a controller trained on interval-
    model data must still steer the per-cycle substrate correctly —
    down on memory-bound work, up on compute-bound work."""
    from repro.core.controller import SSMDVFSController
    model = small_pipeline.model("base")

    mem = DetailedClusterRunner(small_arch, _mem_kernel(), seed=2).run(
        SSMDVFSController(model, 0.10), max_epochs=300)
    assert min(mem.levels) <= 1  # found the low-level savings

    cmp_ = DetailedClusterRunner(small_arch, _cmp_kernel(), seed=2).run(
        SSMDVFSController(model, 0.10), max_epochs=300)
    steady = cmp_.levels[2:] or cmp_.levels
    assert sum(steady) / len(steady) >= 3.5  # stays near the top


def test_counters_from_detailed_are_valid(small_arch):
    from repro.gpu.detailed.runner import counters_from_detailed
    from repro.power.model import PowerModel
    sm = DetailedSM(small_arch, _mem_kernel().phases[0], 1165e6, seed=4)
    result = sm.run(2000)
    counters = counters_from_detailed(result, small_arch, 1165e6, 1.155,
                                      PowerModel.scaled_for(1), 0.9)
    assert counters["inst_total"] == result.instructions
    assert counters["power_per_core"] > 0
    assert 0 <= counters["l1_read_miss_rate"] <= 1
    assert counters["issue_slots"] == pytest.approx(
        2000 * small_arch.issue_width)
