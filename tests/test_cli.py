"""Command-line interface (smoke-level, reduced configurations)."""

import pytest

from repro.cli import build_parser, main


def test_parser_builds_and_lists_commands():
    parser = build_parser()
    help_text = parser.format_help()
    for command in ("suites", "datagen", "stats", "train", "evaluate",
                    "hardware", "run"):
        assert command in help_text


def test_missing_command_errors():
    with pytest.raises(SystemExit):
        main([])


def test_suites_command(capsys):
    assert main(["suites"]) == 0
    out = capsys.readouterr().out
    assert "rodinia.bfs" in out
    assert "eval/unseen" in out
    assert "train" in out


@pytest.fixture(scope="module")
def cli_cache(tmp_path_factory):
    """A small CLI dataset cache shared by the pipeline commands."""
    cache = tmp_path_factory.mktemp("cli-cache")
    code = main(["datagen", "--small", "--cache", str(cache),
                 "--breakpoints", "2", "--seed", "1"])
    assert code == 0
    return cache


def test_datagen_is_cached(cli_cache, capsys):
    # Second invocation must hit the cache (fast) and report the same.
    assert main(["datagen", "--small", "--cache", str(cli_cache),
                 "--breakpoints", "2", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "dataset ready" in out


def test_stats_command(cli_cache, capsys):
    assert main(["stats", "--small", "--cache", str(cli_cache),
                 "--breakpoints", "2", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "Dataset diagnostics" in out


@pytest.fixture(scope="module")
def cli_model(cli_cache, tmp_path_factory, capsys=None):
    out_dir = tmp_path_factory.mktemp("cli-artifacts")
    code = main(["train", "--small", "--cache", str(cli_cache),
                 "--breakpoints", "2", "--seed", "1",
                 "--epochs", "30", "--out", str(out_dir)])
    assert code == 0
    return out_dir / "pruned"


def test_train_saves_all_variants(cli_model):
    base = cli_model.parent
    for variant in ("base", "compressed", "pruned"):
        assert (base / variant / "meta.json").exists()


def test_evaluate_command(cli_model, tmp_path, capsys):
    export = tmp_path / "fig4.json"
    code = main(["evaluate", "--small", "--model", str(cli_model),
                 "--kernels", "2", "--preset", "0.1",
                 "--duration-us", "150", "--seed", "1",
                 "--export", str(export)])
    assert code == 0
    out = capsys.readouterr().out
    assert "normalized EDP" in out or "Fig. 4" in out
    assert export.exists()


def test_hardware_command(cli_model, capsys):
    assert main(["hardware", "--model", str(cli_model)]) == 0
    out = capsys.readouterr().out
    assert "cycles / inference" in out


def test_run_command(cli_model, capsys):
    code = main(["run", "--small", "--model", str(cli_model),
                 "--kernel", "rodinia.hotspot", "--duration-us", "150",
                 "--seed", "1"])
    assert code == 0
    out = capsys.readouterr().out
    assert "normalized EDP" in out
