"""Performance-counter schema (the paper's 47 counters)."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.gpu.counters import (COUNTER_NAMES, DIRECT_FEATURE_NAMES,
                                INDIRECT_FEATURE_NAMES, NUM_COUNTERS,
                                PAPER_ALIASES, CounterSet, paper_category)


def test_exactly_47_counters():
    """The paper collects 47 performance counters (§III-B)."""
    assert NUM_COUNTERS == 47
    assert len(COUNTER_NAMES) == 47


def test_names_are_unique():
    assert len(set(COUNTER_NAMES)) == len(COUNTER_NAMES)


def test_paper_aliases_resolve():
    for alias, name in PAPER_ALIASES.items():
        assert name in COUNTER_NAMES, f"{alias} -> {name} missing"


def test_table1_counters_have_expected_categories():
    """Table I: IPC is instruction info, MH/MH\\L/L1CRM are stalls, PPC power."""
    assert paper_category("ipc") == "instruction"
    assert paper_category("stall_mem_hazard") == "stall"
    assert paper_category("stall_mem_hazard_nonload") == "stall"
    assert paper_category("l1_read_miss") == "stall"
    assert paper_category("power_per_core") == "power"


def test_direct_features_are_exactly_the_power_counters():
    assert set(DIRECT_FEATURE_NAMES) == {
        "power_per_core", "power_dynamic", "power_static", "energy_epoch"}
    assert set(DIRECT_FEATURE_NAMES) | set(INDIRECT_FEATURE_NAMES) == set(COUNTER_NAMES)


def test_unknown_counter_rejected():
    counters = CounterSet()
    with pytest.raises(SimulationError):
        counters["nonsense"] = 1.0
    with pytest.raises(SimulationError):
        _ = counters["nonsense"]
    with pytest.raises(SimulationError):
        CounterSet({"nonsense": 1.0})
    with pytest.raises(SimulationError):
        paper_category("nonsense")


def test_missing_counters_default_to_zero():
    counters = CounterSet()
    assert counters["ipc"] == 0.0


def test_as_vector_order_and_selection():
    counters = CounterSet()
    counters["ipc"] = 2.0
    counters["inst_total"] = 100.0
    vec = counters.as_vector(("inst_total", "ipc"))
    assert vec.tolist() == [100.0, 2.0]
    full = counters.as_vector()
    assert full.shape == (47,)


def test_average_across_clusters():
    a = CounterSet({"ipc": 2.0, "inst_total": 100.0})
    b = CounterSet({"ipc": 4.0, "inst_total": 300.0})
    mean = CounterSet.average([a, b])
    assert mean["ipc"] == pytest.approx(3.0)
    assert mean["inst_total"] == pytest.approx(200.0)


def test_accumulate_sums():
    a = CounterSet({"inst_total": 100.0})
    b = CounterSet({"inst_total": 300.0})
    assert CounterSet.accumulate([a, b])["inst_total"] == pytest.approx(400.0)


def test_average_empty_rejected():
    with pytest.raises(SimulationError):
        CounterSet.average([])


def test_copy_is_independent():
    a = CounterSet({"ipc": 2.0})
    b = a.copy()
    b["ipc"] = 9.0
    assert a["ipc"] == 2.0


def test_vector_is_float64():
    assert CounterSet().as_vector().dtype == np.float64
