"""End-to-end pipeline build (Fig. 2)."""

import pytest

from repro.errors import ModelError
from repro.nn.metrics import within_one_accuracy
from repro.core.pipeline import (PipelineConfig, build_from_dataset)


def test_pipeline_builds_all_variants(small_pipeline):
    assert set(small_pipeline.pairs) == {"base", "compressed", "pruned"}
    assert set(small_pipeline.models) == {"base", "compressed", "pruned"}


def test_pipeline_feature_names_respected(small_pipeline):
    assert small_pipeline.feature_names == (
        "power_per_core", "ipc", "stall_mem_hazard",
        "stall_mem_hazard_nonload", "l1_read_miss")
    assert small_pipeline.rfe is None  # fixed features -> no RFE


def test_decision_quality_is_reasonable(small_pipeline):
    """On the small set the base pair must clearly beat chance (16.7 %)
    and be nearly always within one level."""
    pair = small_pipeline.pairs["base"]
    assert pair.accuracy_pct > 40.0
    prepared = small_pipeline.prepared
    preds = pair.decision.predict_class(prepared.decision.x_test)
    assert within_one_accuracy(preds, prepared.decision.y_test) > 0.8


def test_calibrator_quality_is_reasonable(small_pipeline):
    assert small_pipeline.pairs["base"].mape_pct < 15.0


def test_compression_reduces_flops(small_pipeline):
    base = small_pipeline.pairs["base"]
    compressed = small_pipeline.pairs["compressed"]
    pruned = small_pipeline.pairs["pruned"]
    assert compressed.flops_dense < base.flops_dense / 3
    assert pruned.flops_sparse < compressed.flops_dense
    # Table II shape: quality degrades only mildly under compression.
    assert pruned.accuracy_pct > base.accuracy_pct - 20.0


def test_pruned_variant_requires_compressed(small_dataset, small_arch):
    with pytest.raises(ModelError):
        build_from_dataset(small_dataset, small_arch,
                           PipelineConfig(feature_names=("ipc",)),
                           variants=("base", "pruned"))


def test_unknown_variant_rejected(small_dataset, small_arch):
    with pytest.raises(ModelError):
        build_from_dataset(small_dataset, small_arch,
                           PipelineConfig(feature_names=("ipc",)),
                           variants=("base", "quantum"))


def test_result_model_lookup(small_pipeline):
    assert small_pipeline.model("base") is small_pipeline.models["base"]
    with pytest.raises(ModelError):
        small_pipeline.model("nonexistent")


def test_metadata_propagated(small_pipeline):
    meta = small_pipeline.model("pruned").metadata
    assert meta["variant"] == "pruned"
    assert meta["flops_sparse"] <= meta["flops_dense"]
