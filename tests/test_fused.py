"""Fused campaign engine: bit-identity, masking, transport, resume.

The fused engine's contract is *byte*-identity with the serial path —
every test here compares pickled record streams or exported JSON, not
approximate metrics.  Coverage spans the engine itself (lockstep
records, early-finish masking, mid-campaign pickling), the batched
policy surfaces (SSMDVFS, heuristic baselines, faulty/guarded
wrappers), the shared-memory transport, and the three campaign layers
that fuse (evaluation grids, datagen, fleet phase 1).
"""

import functools
import json
import pickle

import numpy as np
import pytest

from repro.baselines.flemma import FLEMMAPolicy
from repro.baselines.pcstall import PCSTALLPolicy
from repro.cli import PAPER_FEATURES
from repro.core.combined import SSMDVFSModel
from repro.core.controller import SSMDVFSController
from repro.core.policy import StaticPolicy
from repro.datagen.dataset import DVFSDataset
from repro.datagen.features import FeatureExtractor, FeatureScaler
from repro.datagen.protocol import ProtocolConfig, generate_chunks_for_suite
from repro.errors import SimulationError
from repro.evaluation.cache import cached_comparison
from repro.evaluation.runner import compare_policies
from repro.faults import build_faulty_policy, config_for_mode
from repro.fleet import ClusterScheduler, TraceConfig, build_trace
from repro.gpu.arch import small_test_config
from repro.gpu.fused import (FusedCampaignEngine, SharedContextCache,
                             SharedObjectRef, dump_shared, fuse_groups,
                             load_shared, release_shared, run_fused)
from repro.gpu.cluster import step_vector_for
from repro.gpu.counters import COUNTER_NAMES, CounterSet
from repro.gpu.interval_model import SolutionCache
from repro.gpu.kernels import KernelProfile
from repro.gpu.phases import balanced_phase, compute_phase, memory_phase
from repro.gpu.simulator import GPUSimulator
from repro.nn.mlp import MLP
from repro.parallel import CampaignStats


def _kernels():
    return [
        KernelProfile("f.compute", [compute_phase("c", 60_000, warps=16)],
                      iterations=2, jitter=0.05),
        KernelProfile("f.memory",
                      [memory_phase("m", 60_000, warps=40, l1_miss=0.8,
                                    l2_miss=0.7)],
                      iterations=2, jitter=0.05),
    ]


def _short_kernel():
    return KernelProfile("f.short", [balanced_phase("b", 30_000)],
                         iterations=1, jitter=0.04)


def _synth_model(num_levels, hidden=16, seed=5):
    rng = np.random.default_rng(seed)
    extractor = FeatureExtractor(PAPER_FEATURES, issue_width=4.0)
    width = extractor.width + 1
    scaler = FeatureScaler().fit(rng.uniform(0.0, 50.0, size=(256, width)))
    return SSMDVFSModel(
        decision_model=MLP([width, hidden, num_levels], rng=rng),
        calibrator_model=MLP([width, hidden, 1], rng=rng),
        feature_names=PAPER_FEATURES, issue_width=4.0,
        num_levels=num_levels,
        decision_scaler=scaler, calibrator_scaler=scaler,
    )


@pytest.fixture(scope="module")
def arch():
    return small_test_config(num_clusters=2)


@pytest.fixture(scope="module")
def model(arch):
    return _synth_model(len(arch.vf_table))


def _policies(arch, model):
    """One policy of each decision style (batched, heuristic, static)."""
    return {
        "static": lambda: StaticPolicy(arch.vf_table.default_level),
        "pcstall": lambda: PCSTALLPolicy(0.10),
        "flemma": lambda: FLEMMAPolicy(0.10),
        "ssmdvfs": lambda: SSMDVFSController(model, 0.10),
    }


def _serial_result(arch, kernel, policy, seed):
    simulator = GPUSimulator(arch, kernel, seed=seed)
    return simulator.run(policy, keep_records=True)


def _result_bytes(result):
    return pickle.dumps((result.policy_name, result.kernel_name,
                         result.epochs, result.account.energy_j,
                         result.account.time_s, result.records))


# ---------------------------------------------------------------------------
# Engine bit-identity
# ---------------------------------------------------------------------------

def test_fused_records_bit_identical_per_policy(arch, model):
    """Every policy style replays byte-identically through the engine."""
    kernels = _kernels()
    seeds = (1, 9)
    for name, factory in _policies(arch, model).items():
        entries = []
        expected = []
        for kernel in kernels:
            for seed in seeds:
                expected.append(_result_bytes(
                    _serial_result(arch, kernel, factory(), seed)))
                entries.append((len(entries),
                                GPUSimulator(arch, kernel, seed=seed),
                                factory()))
        results = run_fused(entries, keep_records=True)
        fused = [_result_bytes(r) for r in results]
        assert fused == expected, f"policy {name!r} diverged when fused"


def test_fused_mixed_policy_group_bit_identical(arch, model):
    """A heterogeneous group (all styles co-simulated) stays identical."""
    kernel = _kernels()[0]
    factories = list(_policies(arch, model).values())
    expected = [_result_bytes(_serial_result(arch, kernel, f(), 3))
                for f in factories]
    entries = [(i, GPUSimulator(arch, kernel, seed=3), f())
               for i, f in enumerate(factories)]
    counters: dict = {}
    results = run_fused(entries, stats_counters=counters)
    assert [_result_bytes(r) for r in results] == expected
    assert counters["fused_tasks"] == len(factories)
    assert counters["fused_quanta"] > 0


def test_fused_faulty_and_guarded_bit_identical(arch, model):
    """Faulty/guarded wrappers fall back to solo decisions, identically."""
    kernel = _kernels()[1]
    config = config_for_mode("dropout", 0.3, seed=2)
    factory = functools.partial(build_faulty_policy,
                                functools.partial(SSMDVFSController,
                                                  model, 0.10),
                                config)
    expected = _result_bytes(_serial_result(arch, kernel, factory(), 4))
    counters: dict = {}
    results = run_fused([(0, GPUSimulator(arch, kernel, seed=4), factory()),
                         (1, GPUSimulator(arch, kernel, seed=5), factory())],
                        stats_counters=counters)
    assert _result_bytes(results[0]) == expected
    # Wrapped policies have no fused hooks: every decision is solo.
    assert counters["fused_solo_decisions"] > 0
    assert counters.get("fused_inference_groups", 0) == 0


def test_fused_shared_solution_and_noise_caches_identical(arch, model):
    """Cross-task solve/noise sharing changes wall-clock, never bits."""
    kernel = _kernels()[0]
    factory = _policies(arch, model)["ssmdvfs"]
    expected = [_result_bytes(_serial_result(arch, kernel, factory(), 7))
                for _ in range(3)]
    shared_cache = SolutionCache(payload_builder=step_vector_for)
    noise_cache: dict = {}
    entries = [(i, GPUSimulator(arch, kernel, seed=7,
                                solution_cache=shared_cache,
                                noise_cache=noise_cache), factory())
               for i in range(3)]
    results = run_fused(entries)
    assert [_result_bytes(r) for r in results] == expected
    assert shared_cache.hits > 0
    # 3 same-seed tasks x 2 clusters share 2 noise objects, not 6.
    assert len(noise_cache) == arch.num_clusters


def test_noise_cache_keyed_by_seed(arch):
    """Different seeds never share noise tracks."""
    kernel = _kernels()[0]
    cache: dict = {}
    GPUSimulator(arch, kernel, seed=1, noise_cache=cache)
    GPUSimulator(arch, kernel, seed=2, noise_cache=cache)
    assert len(cache) == 2 * arch.num_clusters


# ---------------------------------------------------------------------------
# Early-finish masking and engine validation
# ---------------------------------------------------------------------------

def test_early_finish_masking(arch, model):
    """Short tasks retire early and stay byte-identical; long ones run on."""
    short, long = _short_kernel(), _kernels()[0]
    factory = _policies(arch, model)["ssmdvfs"]
    expected_short = _result_bytes(_serial_result(arch, short, factory(), 2))
    expected_long = _result_bytes(_serial_result(arch, long, factory(), 2))
    counters: dict = {}
    results = run_fused([(0, GPUSimulator(arch, short, seed=2), factory()),
                         (1, GPUSimulator(arch, long, seed=2), factory())],
                        stats_counters=counters)
    assert _result_bytes(results[0]) == expected_short
    assert _result_bytes(results[1]) == expected_long
    # The short task was masked out of late quanta: the engine ran
    # fewer task-epochs than quanta x tasks.
    assert counters["fused_task_epochs"] < counters["fused_quanta"] * 2


def test_engine_rejects_mismatched_tasks(arch):
    kernel = _kernels()[0]
    engine = FusedCampaignEngine()
    engine.add_task(0, GPUSimulator(arch, kernel, seed=1), StaticPolicy(0))
    with pytest.raises(SimulationError):
        engine.add_task(1, GPUSimulator(arch, kernel, seed=1,
                                        epoch_s=20e-6), StaticPolicy(0))
    other_arch = small_test_config(num_clusters=4)
    with pytest.raises(SimulationError):
        engine.add_task(2, GPUSimulator(other_arch, kernel, seed=1),
                        StaticPolicy(0))


def test_fuse_groups_shapes():
    assert fuse_groups([1, 2, 3, 4, 5], 2) == [[1, 2], [3, 4], [5]]
    assert fuse_groups([], 4) == []
    with pytest.raises(SimulationError):
        fuse_groups([1], 0)


# ---------------------------------------------------------------------------
# Mid-campaign pickling (the checkpoint primitive)
# ---------------------------------------------------------------------------

def test_engine_pickles_mid_campaign_and_resumes_identically(arch, model):
    kernel = _kernels()[0]
    factory = _policies(arch, model)["ssmdvfs"]
    reference = _result_bytes(_serial_result(arch, kernel, factory(), 6))

    engine = FusedCampaignEngine()
    engine.add_task(0, GPUSimulator(arch, kernel, seed=6), factory(),
                    keep_records=True)
    engine._started = True
    engine.tasks[0].policy.reset(engine.tasks[0].simulator)
    for _ in range(3):  # pause mid-campaign
        engine.step_quantum()
    resumed = pickle.loads(pickle.dumps(engine))
    while any(not t.done for t in resumed.tasks):
        resumed.step_quantum()
    assert _result_bytes(resumed.tasks[0].result) == reference


# ---------------------------------------------------------------------------
# Shared-memory transport
# ---------------------------------------------------------------------------

def test_shared_memory_roundtrip_and_readonly(model):
    ref, block = dump_shared(model)
    try:
        if ref.shm_name is not None:
            assert ref.shared_bytes > 0
        loaded, attached = load_shared(ref)
        weights = loaded.decision_maker.model.layers[0].weights
        original = model.decision_maker.model.layers[0].weights
        np.testing.assert_array_equal(weights, original)
        if ref.shm_name is not None:
            assert not weights.flags.writeable
        # Read-only weights must still run inference (scratch buffers
        # are reallocated per process, never shipped as shared views).
        rng = np.random.default_rng(0)
        counter_sets = [CounterSet.from_vector(
            rng.uniform(1.0, 1e4, size=len(COUNTER_NAMES)))
            for _ in range(4)]
        levels = loaded.decision_maker.predict_levels(counter_sets, 0.1)
        assert levels == model.decision_maker.predict_levels(counter_sets,
                                                             0.1)
    finally:
        release_shared(block)


def test_shared_transport_inline_fallback():
    """Graphs below the threshold ship inline (no segment to leak)."""
    ref, block = dump_shared({"small": np.arange(3.0)})
    assert block is None
    assert ref.shm_name is None
    obj, attached = load_shared(ref)
    assert attached is None
    np.testing.assert_array_equal(obj["small"], np.arange(3.0))


def test_shared_context_cache_attaches_once(model):
    ref, block = dump_shared(model)
    try:
        cache = SharedContextCache(max_entries=2)
        first = cache.get(ref)
        assert cache.get(ref) is first
    finally:
        release_shared(block)


def test_shared_ref_is_picklable(model):
    ref, block = dump_shared(model)
    try:
        clone = pickle.loads(pickle.dumps(ref))
        assert isinstance(clone, SharedObjectRef)
        assert clone.shm_name == ref.shm_name
        assert clone.arrays == ref.arrays
    finally:
        release_shared(block)


# ---------------------------------------------------------------------------
# Campaign layers: evaluation grid, datagen, fleet
# ---------------------------------------------------------------------------

def _grid_payload(result):
    return [(r.policy_name, r.kernel_name, r.time_s, r.energy_j,
             r.normalized_edp, r.normalized_latency, r.epochs)
            for r in result.runs]


def test_compare_policies_fused_identical_across_widths(arch, model):
    factories = {
        "pcstall": functools.partial(PCSTALLPolicy, 0.10),
        "ssmdvfs": functools.partial(SSMDVFSController, model, 0.10),
    }
    kernels = _kernels()
    serial = _grid_payload(compare_policies(factories, kernels, arch,
                                            preset=0.10, seed=1))
    for width in (1, 4, 32):
        stats = CampaignStats()
        fused = compare_policies(factories, kernels, arch, preset=0.10,
                                 seed=1, stats=stats, fused=True,
                                 fuse_width=width)
        assert _grid_payload(fused) == serial, f"width {width} diverged"
        assert stats.counters["fused_tasks"] == \
            (len(factories) + 1) * len(kernels)
    # Wide groups actually batch inference and share noise tracks.
    assert stats.counters["fused_inference_groups"] > 0
    assert stats.counters["fused_noise_shared"] > 0


def test_cached_comparison_fused_namespaces_checkpoint(tmp_path, arch, model,
                                                       monkeypatch):
    """Fused/serial share the result cache but not checkpoint files."""
    import repro.evaluation.cache as evaluation_cache
    ckpt_paths: list = []
    real_ckpt = evaluation_cache.CampaignCheckpoint

    def recording_ckpt(path, **kwargs):
        ckpt_paths.append(str(path))
        return real_ckpt(path, **kwargs)

    monkeypatch.setattr(evaluation_cache, "CampaignCheckpoint",
                        recording_ckpt)
    factories = {"ssmdvfs": functools.partial(SSMDVFSController, model, 0.10)}
    kernels = _kernels()[:1]
    serial_stats = CampaignStats()
    serial = cached_comparison(tmp_path, factories, kernels, arch, 0.10,
                               seed=2, stats=serial_stats, checkpoint=True)
    fused_stats = CampaignStats()
    fused = cached_comparison(tmp_path, factories, kernels, arch, 0.10,
                              seed=2, stats=fused_stats, checkpoint=True,
                              fused=True, fuse_width=4, use_cache=False)
    assert _grid_payload(fused) == _grid_payload(serial)
    # Fused checkpoints store per-group results, serial per-task: the
    # two runs must never resume from each other's files.
    assert len(ckpt_paths) == 2
    assert ckpt_paths[0] != ckpt_paths[1]
    assert ".fused4" in ckpt_paths[1]
    # Results are bit-identical, so the grid artefact itself is shared:
    # a fused re-run with the cache on is a pure cache hit.
    hit_stats = CampaignStats()
    again = cached_comparison(tmp_path, factories, kernels, arch, 0.10,
                              seed=2, stats=hit_stats, fused=True,
                              fuse_width=4)
    assert _grid_payload(again) == _grid_payload(serial)
    assert hit_stats.counters["comparison_cache_hit"] == 1


def test_datagen_fused_identical(arch):
    config = ProtocolConfig(max_breakpoints_per_kernel=2, seed=3)
    kernels = _kernels()
    serial = generate_chunks_for_suite(kernels, arch, config=config)
    for width in (1, 2):
        stats = CampaignStats()
        fused = generate_chunks_for_suite(kernels, arch, config=config,
                                          fused=True, fuse_width=width,
                                          stats=stats)
        assert pickle.dumps(fused) == pickle.dumps(serial)
        assert stats.counters["fused_tasks"] == len(kernels)
    serial_set = DVFSDataset.from_breakpoint_chunks(serial)
    fused_set = DVFSDataset.from_breakpoint_chunks(fused)
    assert np.array_equal(serial_set.counters, fused_set.counters)
    assert np.array_equal(serial_set.sample_loss, fused_set.sample_loss)


def test_fleet_fused_export_identical(tmp_path, arch, model):
    trace = build_trace(arch, TraceConfig(trace="steady", jobs=8, nodes=2,
                                          seed=4))
    factory = functools.partial(SSMDVFSController, model, 0.10)

    def run_fleet(fused):
        stats = CampaignStats()
        scheduler = ClusterScheduler(arch, factory, num_nodes=2,
                                     policy_name="ssmdvfs", seed=4,
                                     stats=stats, fused=fused, fuse_width=4)
        result = scheduler.run(trace, trace_name="fused-test")
        path = tmp_path / f"fleet-{fused}.json"
        result.export_json(path)
        return path.read_bytes(), stats

    serial_bytes, _ = run_fleet(False)
    fused_bytes, stats = run_fleet(True)
    assert fused_bytes == serial_bytes
    assert stats.counters["fused_tasks"] == 8
