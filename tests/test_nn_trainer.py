"""Training loop: convergence, early stopping, validation."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.nn.metrics import accuracy
from repro.nn.mlp import MLP
from repro.nn.trainer import (TrainConfig, train_classifier, train_regressor)


def _blobs(n=300, seed=0):
    """Three linearly separable 2-D blobs."""
    rng = np.random.default_rng(seed)
    centers = np.array([[0.0, 0.0], [4.0, 0.0], [0.0, 4.0]])
    labels = rng.integers(0, 3, size=n)
    x = centers[labels] + rng.normal(scale=0.5, size=(n, 2))
    return x, labels


def test_classifier_learns_blobs():
    x, y = _blobs()
    model = MLP([2, 16, 3], rng=np.random.default_rng(1))
    train_classifier(model, x, y, TrainConfig(
        epochs=150, learning_rate=5e-3, patience=30, seed=1))
    assert accuracy(model.predict_class(x), y) > 0.95


def test_regressor_learns_linear_map():
    rng = np.random.default_rng(2)
    x = rng.normal(size=(400, 3))
    y = x @ np.array([1.0, -2.0, 0.5]) + 0.3
    model = MLP([3, 16, 1], rng=rng)
    train_regressor(model, x, y, TrainConfig(epochs=80, seed=2))
    pred = model.predict_scalar(x)
    residual = np.mean((pred - y) ** 2) / np.var(y)
    assert residual < 0.05


def test_early_stopping_triggers():
    # Heavily overlapping classes: validation loss plateaus quickly, so
    # patience must fire long before the epoch budget.
    rng = np.random.default_rng(3)
    x = rng.normal(size=(200, 2))
    y = rng.integers(0, 3, size=200)
    model = MLP([2, 16, 3], rng=rng)
    history = train_classifier(
        model, x, y, TrainConfig(epochs=500, patience=5, seed=3))
    assert history.stopped_early
    assert history.epochs_run < 500


def test_best_checkpoint_restored():
    x, y = _blobs(n=200)
    model = MLP([2, 16, 3], rng=np.random.default_rng(4))
    history = train_classifier(
        model, x, y, TrainConfig(epochs=40, patience=40, seed=4))
    assert 0 <= history.best_epoch < history.epochs_run
    assert history.best_val_loss == min(history.val_losses)


def test_training_is_deterministic():
    x, y = _blobs(n=150)
    results = []
    for _ in range(2):
        model = MLP([2, 8, 3], rng=np.random.default_rng(5))
        train_classifier(model, x, y, TrainConfig(epochs=10, seed=5))
        results.append(model.forward(x[:5]))
    assert np.allclose(results[0], results[1])


def test_sgd_optimizer_option():
    x, y = _blobs(n=150)
    model = MLP([2, 16, 3], rng=np.random.default_rng(6))
    train_classifier(model, x, y, TrainConfig(
        epochs=40, optimizer="sgd", learning_rate=0.05, seed=6))
    assert accuracy(model.predict_class(x), y) > 0.9


def test_shape_validation():
    model = MLP([2, 4, 3])
    with pytest.raises(TrainingError):
        train_classifier(model, np.ones((5, 3)), np.zeros(5, dtype=int))
    with pytest.raises(TrainingError):
        train_classifier(model, np.ones((5, 2)), np.zeros(4, dtype=int))
    with pytest.raises(TrainingError):
        train_classifier(model, np.ones((1, 2)), np.zeros(1, dtype=int))


def test_config_validation():
    with pytest.raises(TrainingError):
        TrainConfig(epochs=0)
    with pytest.raises(TrainingError):
        TrainConfig(batch_size=0)
    with pytest.raises(TrainingError):
        TrainConfig(validation_fraction=1.0)
    with pytest.raises(TrainingError):
        TrainConfig(optimizer="lbfgs")


def test_zero_validation_fraction_uses_train_loss():
    x, y = _blobs(n=100)
    model = MLP([2, 8, 3], rng=np.random.default_rng(7))
    history = train_classifier(model, x, y, TrainConfig(
        epochs=10, validation_fraction=0.0, patience=10, seed=7))
    assert history.val_losses == history.train_losses
