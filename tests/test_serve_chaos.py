"""Serve-chaos certification harness: invariants, gating, CLI exit codes."""

import json

import pytest

from repro.cli import main
from repro.errors import ServeError
from repro.evaluation.serve_chaos import (CHAOS_FAULTS, ServeChaosConfig,
                                          ServeChaosResult, run_serve_chaos)
from repro.serve import ServeConfig


def _config(**kwargs):
    defaults = dict(trials=2, determinism_trials=1, seed=5,
                    serve=ServeConfig(streams=2, ticks=120, num_workers=2,
                                      faults=CHAOS_FAULTS),
                    crash_write_trials=4)
    defaults.update(kwargs)
    return ServeChaosConfig(**defaults)


def test_serve_chaos_passes_and_exports(small_arch, tmp_path):
    result = run_serve_chaos(small_arch, _config(),
                             store_root=tmp_path / "store", workers=0)
    assert result.passed, result.violations
    assert len(result.trials) == 2
    assert result.trials[0].byte_stable is True
    assert result.trials[1].byte_stable is None  # dual-run skipped
    assert all(trial.conserved for trial in result.trials)
    assert result.crash_trials >= 4 and result.crash_torn_reads == 0
    path = result.export_json(tmp_path / "SERVE_chaos.json")
    payload = json.loads(path.read_text())
    assert payload["passed"] is True
    assert payload["counters"]["serve_chaos_trials"] == 2
    rendered = result.render()
    assert "all serving invariants held" in rendered


def test_serve_chaos_trials_are_seed_isolated(small_arch, tmp_path):
    result = run_serve_chaos(small_arch, _config(determinism_trials=0),
                             store_root=tmp_path, workers=0)
    seeds = {trial.seed for trial in result.trials}
    assert len(seeds) == 2  # each trial drew its own fault train


def test_serve_chaos_config_validation():
    with pytest.raises(ServeError):
        _config(trials=0)
    with pytest.raises(ServeError):
        _config(determinism_trials=5)
    with pytest.raises(ServeError):
        _config(recovery_budget_ticks=3)  # below the supervisor worst case
    with pytest.raises(ServeError):
        _config(serve=ServeConfig(streams=2))  # no fault rate active


def test_serve_chaos_violations_fail_the_gate():
    result = ServeChaosResult(policy_name="p", streams=1, num_workers=1,
                              seed=0)
    assert result.passed
    result.violations.append("trial 0: something broke")
    assert not result.passed
    assert result.to_payload()["passed"] is False
    assert "SERVE INVARIANT VIOLATIONS" in result.render()


def test_cli_serve_chaos_gate_exits_zero_on_pass(tmp_path):
    code = main(["serve-chaos", "--small", "--seed", "5", "--trials", "1",
                 "--streams", "2", "--ticks", "100",
                 "--crash-trials", "2",
                 "--store", str(tmp_path / "store"),
                 "--export", str(tmp_path / "SERVE_chaos_smoke.json")])
    assert code == 0
    payload = json.loads((tmp_path / "SERVE_chaos_smoke.json").read_text())
    assert payload["passed"] is True
    assert payload["policy"] == "governor+serve"


def test_cli_serve_replay_exits_zero(tmp_path, capsys):
    code = main(["serve", "--small", "--seed", "3", "--streams", "2",
                 "--ticks", "80",
                 "--export", str(tmp_path / "SERVE_run.json")])
    assert code == 0
    out = capsys.readouterr().out
    assert "conserved=yes" in out
    payload = json.loads((tmp_path / "SERVE_run.json").read_text())
    assert payload["conserved"] is True
