"""Best-static oracle and utilization governor baselines."""

import pytest

from repro.errors import PolicyError
from repro.baselines.governor import UtilizationGovernor
from repro.baselines.static_oracle import best_static, static_sweep
from repro.gpu.counters import CounterSet
from repro.gpu.kernels import KernelProfile
from repro.gpu.phases import compute_phase, memory_phase
from repro.gpu.simulator import GPUSimulator
from repro.core.policy import StaticPolicy


def _kernel(kind="memory", iterations=12):
    phase = (memory_phase("m", 120_000, warps=48, l1_miss=0.9, l2_miss=0.9)
             if kind == "memory" else compute_phase("c", 120_000, warps=16))
    return KernelProfile(f"xb.{kind}", [phase], iterations=iterations,
                         jitter=0.05)


# ---------------------------------------------------------------------------
# Static oracle
# ---------------------------------------------------------------------------

def test_sweep_covers_all_levels(small_arch):
    points = static_sweep(_kernel(), small_arch, seed=2)
    assert [p.level for p in points] == list(range(6))
    assert all(p.time_s > 0 and p.energy_j > 0 for p in points)


def test_memory_kernel_prefers_low_level(small_arch):
    result = best_static(_kernel("memory"), small_arch, seed=2)
    assert result.best_level <= 2


def test_compute_kernel_unconstrained_tradeoff(small_arch):
    """Unconstrained best-EDP may sit anywhere, but with a tight preset
    the compute kernel must stay near the default point."""
    constrained = best_static(_kernel("compute"), small_arch, preset=0.05,
                              seed=2)
    assert constrained.best_level >= 4


def test_preset_constrains_eligibility(small_arch):
    loose = best_static(_kernel("compute"), small_arch, preset=2.0, seed=2)
    tight = best_static(_kernel("compute"), small_arch, preset=0.02, seed=2)
    assert tight.best_level >= loose.best_level


def test_chosen_point_is_min_edp_of_eligible(small_arch):
    result = best_static(_kernel("memory"), small_arch, preset=0.10, seed=2)
    default = result.points[small_arch.vf_table.default_level]
    eligible = [p for p in result.points
                if (p.time_s - default.time_s) / default.time_s <= 0.10 + 1e-12]
    assert result.chosen.edp == min(p.edp for p in eligible)


def test_negative_preset_rejected(small_arch):
    with pytest.raises(PolicyError):
        best_static(_kernel(), small_arch, preset=-0.1)


# ---------------------------------------------------------------------------
# Utilization governor
# ---------------------------------------------------------------------------

def test_governor_validation():
    with pytest.raises(PolicyError):
        UtilizationGovernor(up_threshold=0.3, down_threshold=0.6)
    with pytest.raises(PolicyError):
        UtilizationGovernor(step=0)
    with pytest.raises(PolicyError):
        UtilizationGovernor(up_threshold=1.5, down_threshold=0.3)


def test_governor_utilization_computation():
    counters = CounterSet({"inst_total": 3000.0, "issue_slots": 10_000.0})
    assert UtilizationGovernor.utilization(counters) == pytest.approx(0.3)
    assert UtilizationGovernor.utilization(CounterSet()) == 0.0


def test_governor_runs_and_adapts(small_arch):
    policy = UtilizationGovernor()
    simulator = GPUSimulator(small_arch, _kernel("memory"), seed=4)
    result = simulator.run(policy, keep_records=True)
    levels = {lvl for r in result.records for lvl in r.levels}
    assert len(levels) > 1  # it moved the operating point


def test_governor_drops_level_on_low_utilization(small_arch):
    """A memory-stalled kernel has low issue utilization, so the
    governor should walk it below the default level."""
    policy = UtilizationGovernor()
    simulator = GPUSimulator(small_arch, _kernel("memory"), seed=4)
    result = simulator.run(policy, keep_records=True)
    final_levels = result.records[-1].levels
    assert min(final_levels) < small_arch.vf_table.default_level


def test_governor_blind_to_memory_boundedness(small_arch):
    """The governor's weakness: on a memory kernel it may drift up and
    down with utilization noise rather than pinning the minimum level.
    Structural check only: it must never crash and must stay in range."""
    policy = UtilizationGovernor(step=2)
    simulator = GPUSimulator(small_arch, _kernel("memory"), seed=5)
    result = simulator.run(policy, keep_records=True)
    for record in result.records:
        assert all(0 <= lvl <= 5 for lvl in record.levels)


def test_governor_vs_static_baseline(small_arch):
    kernel = _kernel("memory")
    base = GPUSimulator(small_arch, kernel, seed=6).run(
        StaticPolicy(small_arch.vf_table.default_level), keep_records=False)
    governed = GPUSimulator(small_arch, kernel, seed=6).run(
        UtilizationGovernor(), keep_records=False)
    # It should save at least some energy on a stalled kernel.
    assert governed.energy_j < base.energy_j * 1.02
