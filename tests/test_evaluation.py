"""Evaluation runner, comparison metrics and reporting."""

import pytest

from repro.errors import ReproError, SimulationError
from repro.evaluation.reporting import (format_percent, format_series,
                                        format_table)
from repro.evaluation.runner import compare_policies
from repro.gpu.kernels import KernelProfile
from repro.gpu.phases import compute_phase, memory_phase
from repro.core.policy import StaticPolicy


def _kernels():
    return [
        KernelProfile("ev.mem", [memory_phase("m", 120_000, warps=48,
                                              l1_miss=0.9, l2_miss=0.9)],
                      iterations=15, jitter=0.05),
        KernelProfile("ev.cmp", [compute_phase("c", 120_000, warps=16)],
                      iterations=15, jitter=0.05),
    ]


@pytest.fixture(scope="module")
def comparison(small_arch):
    factories = {
        "min": lambda: StaticPolicy(0),
        "mid": lambda: StaticPolicy(3),
    }
    return compare_policies(factories, _kernels(), small_arch, preset=0.10,
                            seed=4)


def test_baseline_always_normalised_to_one(comparison):
    for run in comparison.series("baseline"):
        assert run.normalized_edp == pytest.approx(1.0)
        assert run.normalized_latency == pytest.approx(1.0)


def test_all_policies_cover_all_kernels(comparison):
    assert comparison.policies() == ["baseline", "min", "mid"]
    for policy in comparison.policies():
        assert len(comparison.series(policy)) == 2


def test_min_level_saves_energy_on_memory_kernel(comparison):
    # Small-arch headroom is limited by frequency-invariant traffic
    # energy; the Titan-X-scale benches assert the strong (<0.9) claim.
    runs = {r.kernel_name: r for r in comparison.series("min")}
    assert runs["ev.mem"].normalized_edp < 0.97
    assert runs["ev.mem"].normalized_latency < 1.1


def test_min_level_hurts_compute_kernel_latency(comparison):
    runs = {r.kernel_name: r for r in comparison.series("min")}
    assert runs["ev.cmp"].normalized_latency > 1.3


def test_mean_metrics_and_improvement(comparison):
    mean_min = comparison.mean_normalized_edp("min")
    assert 0 < mean_min
    improvement = comparison.edp_improvement_vs("min", "mid")
    assert improvement == pytest.approx(
        1.0 - mean_min / comparison.mean_normalized_edp("mid"))


def test_unknown_policy_rejected(comparison):
    with pytest.raises(SimulationError):
        comparison.mean_normalized_edp("ghost")


def test_format_table_basic():
    text = format_table(["a", "b"], [["x", 1.5], ["y", 2.0]], title="T")
    assert "T" in text
    assert "1.5000" in text
    assert text.count("\n") == 4  # title, header, separator, two rows


def test_format_table_validation():
    with pytest.raises(ReproError):
        format_table([], [])
    with pytest.raises(ReproError):
        format_table(["a"], [["x", "y"]])


def test_format_percent():
    assert format_percent(0.1109) == "11.09%"
    assert format_percent(0.05, signed=True) == "+5.00%"


def test_format_series():
    assert format_series("s", [1.0, 2.0]) == "s: [1.000, 2.000]"
