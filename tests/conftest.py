"""Shared fixtures: a small generated dataset and a trained model pair.

Data generation and training are the expensive parts of the test suite,
so a reduced (but real) dataset and pipeline build are generated once
per session and shared across test modules.
"""

import pytest

from repro.datagen.dataset import DVFSDataset
from repro.datagen.protocol import ProtocolConfig, generate_for_suite
from repro.gpu.arch import small_test_config
from repro.gpu.kernels import KernelProfile
from repro.gpu.phases import (balanced_phase, compute_phase, divergent_phase,
                              memory_phase)
from repro.nn.trainer import TrainConfig
from repro.core.pipeline import PipelineConfig, build_from_dataset


def _training_kernels():
    """Small but diverse kernels spanning compute- to memory-bound.

    Phases span several epochs (like the real suites) so next-window
    prediction is learnable, and the memory kernel is bandwidth-capped
    (warps high, misses high) so it is genuinely frequency-insensitive.
    """
    return [
        KernelProfile("t.compute", [compute_phase("c", 150_000, warps=16)],
                      iterations=8, jitter=0.06),
        KernelProfile("t.memory",
                      [memory_phase("m", 150_000, warps=48, l1_miss=0.9,
                                    l2_miss=0.9)],
                      iterations=8, jitter=0.06),
        KernelProfile("t.balanced", [balanced_phase("b", 150_000)],
                      iterations=8, jitter=0.06),
        KernelProfile("t.mixed",
                      [compute_phase("c", 90_000, warps=20),
                       memory_phase("m", 90_000, warps=40),
                       divergent_phase("d", 50_000)],
                      iterations=6, jitter=0.08),
    ]


@pytest.fixture(scope="session")
def small_arch():
    """Two-cluster architecture for fast simulation."""
    return small_test_config(num_clusters=2)


@pytest.fixture(scope="session")
def small_dataset(small_arch) -> DVFSDataset:
    """A real (small) dataset generated through the full protocol."""
    config = ProtocolConfig(max_breakpoints_per_kernel=5, seed=11)
    breakpoints = generate_for_suite(_training_kernels(), small_arch,
                                     config=config)
    return DVFSDataset.from_breakpoints(breakpoints)


@pytest.fixture(scope="session")
def small_pipeline(small_dataset, small_arch):
    """A full pipeline build (base + compressed + pruned) on the small set."""
    config = PipelineConfig(
        feature_names=("power_per_core", "ipc", "stall_mem_hazard",
                       "stall_mem_hazard_nonload", "l1_read_miss"),
        train=TrainConfig(epochs=50, patience=10, learning_rate=3e-3,
                          seed=11),
        finetune=TrainConfig(epochs=15, patience=5, learning_rate=5e-4,
                             seed=11),
        seed=11,
    )
    return build_from_dataset(small_dataset, small_arch, config)
