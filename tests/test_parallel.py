"""Parallel campaign layer: determinism, caching, worker fallback."""

import os
from functools import partial

import numpy as np
import pytest

from repro.core.policy import StaticPolicy
from repro.datagen.cache import cached_dataset, content_key
from repro.datagen.dataset import DVFSDataset
from repro.datagen.protocol import (ProtocolConfig, generate_chunks_for_suite,
                                    generate_for_suite)
from repro.errors import ParallelError
from repro.evaluation.cache import cached_comparison, comparison_cache_key
from repro.evaluation.runner import ComparisonResult, compare_policies
from repro.gpu.kernels import KernelProfile
from repro.gpu.phases import balanced_phase, compute_phase, memory_phase
from repro.parallel import (CampaignStats, default_chunksize, derive_seed,
                            parallel_map, resolve_workers)

CFG = ProtocolConfig(max_breakpoints_per_kernel=2, seed=7)

#: Environment marker so worker processes (fork or spawn) can recognise
#: they are not the pytest main process.
_MAIN_PID_VAR = "_REPRO_TEST_MAIN_PID"


def _suite():
    return [
        KernelProfile("p.compute",
                      [compute_phase("c", 120_000, warps=16)],
                      iterations=6, jitter=0.05),
        KernelProfile("p.memory",
                      [memory_phase("m", 120_000, warps=40, l1_miss=0.8,
                                    l2_miss=0.7)],
                      iterations=6, jitter=0.05),
        KernelProfile("p.balanced", [balanced_phase("b", 120_000)],
                      iterations=6, jitter=0.05),
    ]


def _eval_kernel():
    return KernelProfile("p.eval", [balanced_phase("b", 120_000)],
                         iterations=10, jitter=0.05)


def _square(x):
    return x * x


def _crash_in_worker(x):
    if os.environ.get(_MAIN_PID_VAR) != str(os.getpid()):
        os._exit(13)  # hard-kill the pool worker, no exception raised
    return x + 1


# ---------------------------------------------------------------------------
# parallel_map plumbing
# ---------------------------------------------------------------------------

def test_parallel_map_matches_serial_and_keeps_order():
    tasks = list(range(23))
    stats = CampaignStats()
    out = parallel_map(_square, tasks, workers=2, stats=stats)
    assert out == [t * t for t in tasks]
    assert stats.stages[-1].mode == "parallel"
    assert stats.stages[-1].workers == 2
    assert stats.stages[-1].tasks == 23


def test_single_worker_stays_in_process():
    stats = CampaignStats()
    assert parallel_map(_square, [1, 2], workers=1, stats=stats) == [1, 4]
    assert stats.stages[-1].mode == "serial"


def test_worker_crash_falls_back_to_serial():
    os.environ[_MAIN_PID_VAR] = str(os.getpid())
    try:
        stats = CampaignStats()
        out = parallel_map(_crash_in_worker, [1, 2, 3], workers=2,
                           stats=stats)
        assert out == [2, 3, 4]
        assert stats.counter("parallel_fallbacks") == 1
        assert stats.stages[-1].mode == "fallback"
    finally:
        os.environ.pop(_MAIN_PID_VAR, None)


def test_unpicklable_task_falls_back_to_serial():
    stats = CampaignStats()
    out = parallel_map(lambda x: x - 1, [5, 6], workers=2, stats=stats)
    assert out == [4, 5]
    assert stats.counter("parallel_fallbacks") == 1


def test_task_errors_propagate():
    def boom(x):
        raise ValueError("task failure")
    with pytest.raises(ValueError):
        parallel_map(boom, [1], workers=1)


def test_resolve_workers():
    assert resolve_workers(None) == 1
    assert resolve_workers(1) == 1
    assert resolve_workers(4) == 4
    assert resolve_workers(0) >= 1
    assert resolve_workers(-1) >= 1


def test_default_chunksize():
    assert default_chunksize(100, 4) == 7
    assert default_chunksize(3, 8) == 1
    with pytest.raises(ParallelError):
        default_chunksize(0, 4)


def test_derive_seed_stable_and_distinct():
    assert derive_seed(3, "a") == derive_seed(3, "a")
    assert derive_seed(3, "a") != derive_seed(3, "b")
    assert derive_seed(3, "a") != derive_seed(4, "a")
    assert 0 <= derive_seed(1, 2, "x") < 2 ** 63


def test_stats_render_mentions_stages_and_counters():
    stats = CampaignStats()
    with stats.stage("demo", tasks=3, workers=2, mode="parallel"):
        pass
    stats.count("dataset_cache_hit")
    text = stats.render()
    assert "demo" in text and "dataset_cache_hit" in text
    assert stats.cache_hits == 1 and stats.cache_misses == 0


# ---------------------------------------------------------------------------
# Data-generation determinism
# ---------------------------------------------------------------------------

def _assert_datasets_identical(a: DVFSDataset, b: DVFSDataset) -> None:
    assert a.kernel_names == b.kernel_names
    for name in ("counters", "sample_breakpoint", "sample_level",
                 "sample_loss", "sample_instructions", "record_group"):
        left, right = getattr(a, name), getattr(b, name)
        assert left.dtype == right.dtype, name
        assert np.array_equal(left, right), name


def test_parallel_dataset_bit_identical_to_serial(small_arch):
    serial = DVFSDataset.from_breakpoints(
        generate_for_suite(_suite(), small_arch, config=CFG))
    stats = CampaignStats()
    chunks = generate_chunks_for_suite(_suite(), small_arch, config=CFG,
                                       workers=2, stats=stats)
    parallel = DVFSDataset.from_breakpoint_chunks(chunks, workers=2,
                                                  stats=stats)
    _assert_datasets_identical(serial, parallel)
    modes = {s.name: s.mode for s in stats.stages}
    assert modes["datagen"] in ("parallel", "fallback")


def test_merge_equals_flat_assembly(small_arch):
    chunks = generate_chunks_for_suite(_suite(), small_arch, config=CFG)
    flat = DVFSDataset.from_breakpoints(
        [bp for chunk in chunks for bp in chunk])
    merged = DVFSDataset.merge(
        [DVFSDataset.from_breakpoints(chunk) for chunk in chunks if chunk])
    _assert_datasets_identical(flat, merged)


# ---------------------------------------------------------------------------
# Dataset cache: hits, misses, invalidation
# ---------------------------------------------------------------------------

def test_warm_cache_skips_simulation(tmp_path, small_arch):
    cold = CampaignStats()
    first = cached_dataset(tmp_path, _suite(), small_arch, CFG, workers=2,
                           stats=cold)
    assert cold.counter("dataset_cache_miss") == 1
    assert cold.counter("dataset_cache_hit") == 0
    assert any(s.name == "datagen" for s in cold.stages)

    warm = CampaignStats()
    second = cached_dataset(tmp_path, _suite(), small_arch, CFG, workers=2,
                            stats=warm)
    assert warm.counter("dataset_cache_hit") == 1
    assert warm.counter("dataset_cache_miss") == 0
    # The warm rerun must skip simulation entirely: no datagen stage ran.
    assert not any(s.name == "datagen" for s in warm.stages)
    _assert_datasets_identical(first, second)


def test_cache_invalidated_on_config_change(tmp_path, small_arch):
    stats = CampaignStats()
    cached_dataset(tmp_path, _suite(), small_arch, CFG, stats=stats)
    other = ProtocolConfig(max_breakpoints_per_kernel=2, seed=8)
    cached_dataset(tmp_path, _suite(), small_arch, other, stats=stats)
    assert stats.counter("dataset_cache_miss") == 2
    assert len(list(tmp_path.glob("dvfs-*.npz"))) == 2


def test_no_cache_regenerates_but_refreshes_file(tmp_path, small_arch):
    stats = CampaignStats()
    cached_dataset(tmp_path, _suite(), small_arch, CFG, stats=stats)
    cached_dataset(tmp_path, _suite(), small_arch, CFG, stats=stats,
                   use_cache=False)
    assert stats.counter("dataset_cache_miss") == 2
    assert len(list(tmp_path.glob("dvfs-*.npz"))) == 1


def test_content_key_is_order_insensitive():
    assert content_key({"a": 1, "b": 2}) == content_key({"b": 2, "a": 1})
    assert content_key({"a": 1}) != content_key({"a": 2})


# ---------------------------------------------------------------------------
# Evaluation grid: parallel parity and caching
# ---------------------------------------------------------------------------

def _factories():
    return {"low": partial(StaticPolicy, 1), "high": partial(StaticPolicy, 4)}


def test_parallel_comparison_matches_serial(small_arch):
    serial = compare_policies(_factories(), [_eval_kernel()], small_arch,
                              0.1, seed=3)
    stats = CampaignStats()
    parallel = compare_policies(_factories(), [_eval_kernel()], small_arch,
                                0.1, seed=3, workers=2, stats=stats)
    assert serial.to_payload() == parallel.to_payload()


def test_comparison_payload_roundtrip(small_arch):
    result = compare_policies(_factories(), [_eval_kernel()], small_arch,
                              0.1, seed=3)
    clone = ComparisonResult.from_payload(result.to_payload())
    assert clone.to_payload() == result.to_payload()
    assert clone.policies() == result.policies()


def test_comparison_cache_hit_and_token_invalidation(tmp_path, small_arch):
    cold = CampaignStats()
    first = cached_comparison(tmp_path, _factories(), [_eval_kernel()],
                              small_arch, 0.1, seed=3, stats=cold)
    assert cold.counter("comparison_cache_miss") == 1

    warm = CampaignStats()
    second = cached_comparison(tmp_path, _factories(), [_eval_kernel()],
                               small_arch, 0.1, seed=3, stats=warm)
    assert warm.counter("comparison_cache_hit") == 1
    assert warm.counter("comparison_cache_miss") == 0
    assert first.to_payload() == second.to_payload()

    # A different model token must land on a fresh key.
    retoken = CampaignStats()
    cached_comparison(tmp_path, _factories(), [_eval_kernel()], small_arch,
                      0.1, seed=3, stats=retoken, cache_token="other-models")
    assert retoken.counter("comparison_cache_miss") == 1


def test_comparison_key_depends_on_grid_parameters(small_arch):
    kernels = [_eval_kernel()]
    base = comparison_cache_key(["a"], kernels, small_arch, 0.1, seed=3)
    assert base == comparison_cache_key(["a"], kernels, small_arch, 0.1,
                                        seed=3)
    assert base != comparison_cache_key(["b"], kernels, small_arch, 0.1,
                                        seed=3)
    assert base != comparison_cache_key(["a"], kernels, small_arch, 0.2,
                                        seed=3)
    assert base != comparison_cache_key(["a"], kernels, small_arch, 0.1,
                                        seed=4)
