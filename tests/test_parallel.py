"""Parallel campaign layer: determinism, caching, worker fallback,
retries, hang recovery, quarantine and checkpoint resume."""

import multiprocessing
import os
import time
from functools import partial

import numpy as np
import pytest

from repro.core.policy import StaticPolicy
from repro.datagen.cache import cached_dataset, content_key
from repro.datagen.dataset import DVFSDataset
from repro.datagen.protocol import (ProtocolConfig, _kernel_task,
                                    generate_chunks_for_suite,
                                    generate_for_suite,
                                    scale_kernel_for_protocol)
from repro.errors import CampaignError, ParallelError
from repro.evaluation.cache import cached_comparison, comparison_cache_key
from repro.evaluation.runner import ComparisonResult, compare_policies
from repro.faults import FlakyTask
from repro.gpu.kernels import KernelProfile
from repro.gpu.phases import balanced_phase, compute_phase, memory_phase
from repro.parallel import (CampaignCheckpoint, CampaignStats,
                            default_chunksize, derive_seed, parallel_map,
                            resolve_workers)

CFG = ProtocolConfig(max_breakpoints_per_kernel=2, seed=7)

#: Environment marker so worker processes (fork or spawn) can recognise
#: they are not the pytest main process.
_MAIN_PID_VAR = "_REPRO_TEST_MAIN_PID"


def _suite():
    return [
        KernelProfile("p.compute",
                      [compute_phase("c", 120_000, warps=16)],
                      iterations=6, jitter=0.05),
        KernelProfile("p.memory",
                      [memory_phase("m", 120_000, warps=40, l1_miss=0.8,
                                    l2_miss=0.7)],
                      iterations=6, jitter=0.05),
        KernelProfile("p.balanced", [balanced_phase("b", 120_000)],
                      iterations=6, jitter=0.05),
    ]


def _eval_kernel():
    return KernelProfile("p.eval", [balanced_phase("b", 120_000)],
                         iterations=10, jitter=0.05)


def _square(x):
    return x * x


def _crash_in_worker(x):
    if os.environ.get(_MAIN_PID_VAR) != str(os.getpid()):
        os._exit(13)  # hard-kill the pool worker, no exception raised
    return x + 1


# ---------------------------------------------------------------------------
# parallel_map plumbing
# ---------------------------------------------------------------------------

def test_parallel_map_matches_serial_and_keeps_order():
    tasks = list(range(23))
    stats = CampaignStats()
    out = parallel_map(_square, tasks, workers=2, stats=stats)
    assert out == [t * t for t in tasks]
    assert stats.stages[-1].mode == "parallel"
    assert stats.stages[-1].workers == 2
    assert stats.stages[-1].tasks == 23


def test_single_worker_stays_in_process():
    stats = CampaignStats()
    assert parallel_map(_square, [1, 2], workers=1, stats=stats) == [1, 4]
    assert stats.stages[-1].mode == "serial"


def test_worker_crash_falls_back_to_serial():
    os.environ[_MAIN_PID_VAR] = str(os.getpid())
    try:
        stats = CampaignStats()
        out = parallel_map(_crash_in_worker, [1, 2, 3], workers=2,
                           stats=stats)
        assert out == [2, 3, 4]
        assert stats.counter("parallel_fallbacks") == 1
        assert stats.stages[-1].mode == "fallback"
    finally:
        os.environ.pop(_MAIN_PID_VAR, None)


def test_unpicklable_task_falls_back_to_serial():
    stats = CampaignStats()
    out = parallel_map(lambda x: x - 1, [5, 6], workers=2, stats=stats)
    assert out == [4, 5]
    assert stats.counter("parallel_fallbacks") == 1


def test_task_errors_propagate():
    def boom(x):
        raise ValueError("task failure")
    with pytest.raises(ValueError):
        parallel_map(boom, [1], workers=1)


# ---------------------------------------------------------------------------
# Resilience: retries, hangs, quarantine, interrupts, checkpoints
# ---------------------------------------------------------------------------

def _plus_one(x):
    return x + 1


def _boom_on_two(x):
    if x == 2:
        raise ValueError("task two always fails")
    return x + 1


def _interrupt_in_worker(x):
    raise KeyboardInterrupt


def test_crashed_tasks_are_retried_to_completion(tmp_path):
    flaky = FlakyTask(_plus_one, tmp_path, mode="exit", faults_per_task=1)
    stats = CampaignStats()
    # A worker exit breaks the whole pool, so every outstanding task in
    # the round is charged an attempt; give enough retries that the four
    # single-fault tasks always recover without quarantine.
    out = parallel_map(flaky, [1, 2, 3, 4], workers=2, stats=stats,
                       backoff_s=0.01, retries=6)
    assert out == [2, 3, 4, 5]
    assert stats.counter("campaign_worker_crashes") > 0
    assert stats.counter("campaign_retries") > 0
    # The pool recovered on its own: no serial fallback was needed.
    assert stats.counter("parallel_fallbacks") == 0
    assert stats.stages[-1].mode == "parallel"


def test_hung_workers_are_terminated_and_tasks_retried(tmp_path):
    flaky = FlakyTask(_plus_one, tmp_path, mode="hang", hang_s=60.0,
                      faults_per_task=1)
    stats = CampaignStats()
    start = time.monotonic()
    out = parallel_map(flaky, [1, 2], workers=2, stats=stats,
                       timeout_s=1.5, backoff_s=0.01)
    assert out == [2, 3]
    # The watchdog must fire at ~timeout_s, not wait out the hang.
    assert time.monotonic() - start < 30.0
    assert stats.counter("campaign_hangs") > 0


def test_permanent_task_failure_raises_campaign_error_with_task_id():
    stats = CampaignStats()
    with pytest.raises(CampaignError) as excinfo:
        parallel_map(_boom_on_two, [1, 2, 3], workers=2, stats=stats,
                     retries=1, backoff_s=0.01)
    assert excinfo.value.task_id == 1  # 2 is the second task
    assert stats.counter("campaign_quarantined") == 1
    assert stats.counter("campaign_task_errors") > 0


def test_keyboard_interrupt_shuts_pool_down_cleanly():
    with pytest.raises(KeyboardInterrupt):
        parallel_map(_interrupt_in_worker, [1, 2, 3, 4], workers=2)
    # No orphaned pool workers may survive the interrupt.
    deadline = time.monotonic() + 10.0
    while multiprocessing.active_children() and time.monotonic() < deadline:
        time.sleep(0.05)
    assert multiprocessing.active_children() == []


def test_raise_mode_fault_is_rescued_in_process(tmp_path):
    flaky = FlakyTask(_plus_one, tmp_path, mode="raise", faults_per_task=1)
    stats = CampaignStats()
    out = parallel_map(flaky, [5, 6], workers=2, stats=stats, backoff_s=0.01)
    assert out == [6, 7]
    # FaultInjectionError is a deterministic ReproError: no pool retries,
    # straight to the quarantine rescue (whose second attempt succeeds).
    assert stats.counter("campaign_serial_rescues") == 2
    assert stats.stages[-1].mode == "fallback"


def test_checkpoint_resume_completes_interrupted_campaign(tmp_path):
    path = tmp_path / "campaign.ckpt"
    tasks = list(range(6))
    # Seed a half-finished campaign the way an interrupted run would.
    partial_ckpt = CampaignCheckpoint(path, key="demo")
    partial_ckpt.save({0: 1, 1: 2, 2: 3})
    stats = CampaignStats()
    out = parallel_map(_plus_one, tasks, workers=2, stats=stats,
                       checkpoint=CampaignCheckpoint(path, key="demo"))
    assert out == [t + 1 for t in tasks]
    assert stats.counter("campaign_tasks_resumed") == 3
    # A completed campaign clears its checkpoint.
    assert not path.exists()
    # And the resumed result matches an uninterrupted run exactly.
    assert out == parallel_map(_plus_one, tasks, workers=1)


def test_checkpoint_key_mismatch_and_corruption_are_ignored(tmp_path):
    path = tmp_path / "campaign.ckpt"
    CampaignCheckpoint(path, key="other-campaign").save({0: 999})
    assert CampaignCheckpoint(path, key="mine").load() == {}
    path.write_bytes(b"\x00garbage not a pickle")
    assert CampaignCheckpoint(path, key="mine").load() == {}
    stats = CampaignStats()
    out = parallel_map(_plus_one, [1, 2], workers=1, stats=stats,
                       checkpoint=CampaignCheckpoint(path, key="mine"))
    assert out == [2, 3]
    assert stats.counter("campaign_tasks_resumed") == 0


def test_checkpoint_write_failure_is_counted_not_fatal(tmp_path,
                                                       monkeypatch):
    # A full disk (or unpicklable payload) mid-campaign must not kill
    # the run — but it must show up in --stats instead of vanishing
    # into a silent except, so operators learn resume is broken.
    def broken_save(self, results):
        raise OSError("disk full")

    monkeypatch.setattr(CampaignCheckpoint, "save", broken_save)
    for workers in (1, 2):
        stats = CampaignStats()
        out = parallel_map(_plus_one, list(range(5)), workers=workers,
                           stats=stats,
                           checkpoint=CampaignCheckpoint(
                               tmp_path / f"w{workers}.ckpt", key="demo"))
        assert out == [1, 2, 3, 4, 5]
        assert stats.counter("campaign_checkpoint_write_failures") >= 1
        assert stats.counter("campaign_suppressed_errors") >= 1
        assert stats.counter("campaign_checkpoint_saves") == 0


def test_checkpoint_clear_failure_is_counted_not_fatal(tmp_path,
                                                      monkeypatch):
    def broken_clear(self):
        raise OSError("read-only filesystem")

    monkeypatch.setattr(CampaignCheckpoint, "clear", broken_clear)
    stats = CampaignStats()
    out = parallel_map(_plus_one, [1, 2], workers=1, stats=stats,
                       checkpoint=CampaignCheckpoint(
                           tmp_path / "c.ckpt", key="demo"))
    assert out == [2, 3]
    assert stats.counter("campaign_suppressed_errors") == 1


def test_faulted_datagen_campaign_is_bit_identical_to_fault_free(
        tmp_path, small_arch):
    config = CFG
    tasks = [(scale_kernel_for_protocol(k, small_arch, config), small_arch,
              None, config) for k in _suite()]
    clean = parallel_map(_kernel_task, tasks, workers=1)
    flaky = FlakyTask(_kernel_task, tmp_path, mode="exit", faults_per_task=1)
    stats = CampaignStats()
    retried = parallel_map(flaky, tasks, workers=2, stats=stats,
                           backoff_s=0.01)
    assert stats.counter("campaign_worker_crashes") > 0
    clean_ds = DVFSDataset.from_breakpoint_chunks(
        [chunk for chunk, _ in clean])
    retried_ds = DVFSDataset.from_breakpoint_chunks(
        [chunk for chunk, _ in retried])
    _assert_datasets_identical(clean_ds, retried_ds)


def test_resolve_workers():
    assert resolve_workers(None) == 1
    assert resolve_workers(1) == 1
    assert resolve_workers(4) == 4
    assert resolve_workers(0) >= 1
    assert resolve_workers(-1) >= 1


def test_default_chunksize():
    assert default_chunksize(100, 4) == 7
    assert default_chunksize(3, 8) == 1
    with pytest.raises(ParallelError):
        default_chunksize(0, 4)


def test_derive_seed_stable_and_distinct():
    assert derive_seed(3, "a") == derive_seed(3, "a")
    assert derive_seed(3, "a") != derive_seed(3, "b")
    assert derive_seed(3, "a") != derive_seed(4, "a")
    assert 0 <= derive_seed(1, 2, "x") < 2 ** 63


def test_stats_render_mentions_stages_and_counters():
    stats = CampaignStats()
    with stats.stage("demo", tasks=3, workers=2, mode="parallel"):
        pass
    stats.count("dataset_cache_hit")
    text = stats.render()
    assert "demo" in text and "dataset_cache_hit" in text
    assert stats.cache_hits == 1 and stats.cache_misses == 0


# ---------------------------------------------------------------------------
# Data-generation determinism
# ---------------------------------------------------------------------------

def _assert_datasets_identical(a: DVFSDataset, b: DVFSDataset) -> None:
    assert a.kernel_names == b.kernel_names
    for name in ("counters", "sample_breakpoint", "sample_level",
                 "sample_loss", "sample_instructions", "record_group"):
        left, right = getattr(a, name), getattr(b, name)
        assert left.dtype == right.dtype, name
        assert np.array_equal(left, right), name


def test_parallel_dataset_bit_identical_to_serial(small_arch):
    serial = DVFSDataset.from_breakpoints(
        generate_for_suite(_suite(), small_arch, config=CFG))
    stats = CampaignStats()
    chunks = generate_chunks_for_suite(_suite(), small_arch, config=CFG,
                                       workers=2, stats=stats)
    parallel = DVFSDataset.from_breakpoint_chunks(chunks, workers=2,
                                                  stats=stats)
    _assert_datasets_identical(serial, parallel)
    modes = {s.name: s.mode for s in stats.stages}
    assert modes["datagen"] in ("parallel", "fallback")


def test_merge_equals_flat_assembly(small_arch):
    chunks = generate_chunks_for_suite(_suite(), small_arch, config=CFG)
    flat = DVFSDataset.from_breakpoints(
        [bp for chunk in chunks for bp in chunk])
    merged = DVFSDataset.merge(
        [DVFSDataset.from_breakpoints(chunk) for chunk in chunks if chunk])
    _assert_datasets_identical(flat, merged)


# ---------------------------------------------------------------------------
# Dataset cache: hits, misses, invalidation
# ---------------------------------------------------------------------------

def test_warm_cache_skips_simulation(tmp_path, small_arch):
    cold = CampaignStats()
    first = cached_dataset(tmp_path, _suite(), small_arch, CFG, workers=2,
                           stats=cold)
    assert cold.counter("dataset_cache_miss") == 1
    assert cold.counter("dataset_cache_hit") == 0
    assert any(s.name == "datagen" for s in cold.stages)

    warm = CampaignStats()
    second = cached_dataset(tmp_path, _suite(), small_arch, CFG, workers=2,
                            stats=warm)
    assert warm.counter("dataset_cache_hit") == 1
    assert warm.counter("dataset_cache_miss") == 0
    # The warm rerun must skip simulation entirely: no datagen stage ran.
    assert not any(s.name == "datagen" for s in warm.stages)
    _assert_datasets_identical(first, second)


def test_cache_invalidated_on_config_change(tmp_path, small_arch):
    stats = CampaignStats()
    cached_dataset(tmp_path, _suite(), small_arch, CFG, stats=stats)
    other = ProtocolConfig(max_breakpoints_per_kernel=2, seed=8)
    cached_dataset(tmp_path, _suite(), small_arch, other, stats=stats)
    assert stats.counter("dataset_cache_miss") == 2
    assert len(list(tmp_path.glob("dvfs-*.npz"))) == 2


def test_no_cache_regenerates_but_refreshes_file(tmp_path, small_arch):
    stats = CampaignStats()
    cached_dataset(tmp_path, _suite(), small_arch, CFG, stats=stats)
    cached_dataset(tmp_path, _suite(), small_arch, CFG, stats=stats,
                   use_cache=False)
    assert stats.counter("dataset_cache_miss") == 2
    assert len(list(tmp_path.glob("dvfs-*.npz"))) == 1


def test_corrupt_dataset_cache_is_regenerated(tmp_path, small_arch):
    stats = CampaignStats()
    first = cached_dataset(tmp_path, _suite(), small_arch, CFG, stats=stats)
    [path] = tmp_path.glob("dvfs-*.npz")
    # Flip bits in the middle of the payload (a torn write / bit-rot).
    blob = bytearray(path.read_bytes())
    for offset in range(len(blob) // 2, len(blob) // 2 + 64):
        blob[offset] ^= 0xFF
    path.write_bytes(bytes(blob))
    recovered = cached_dataset(tmp_path, _suite(), small_arch, CFG,
                               stats=stats)
    assert stats.counter("dataset_cache_corrupt") == 1
    assert stats.counter("dataset_cache_miss") == 2
    _assert_datasets_identical(first, recovered)
    # The regenerated artefact replaced the corrupt file: next load hits.
    rewarmed = CampaignStats()
    cached_dataset(tmp_path, _suite(), small_arch, CFG, stats=rewarmed)
    assert rewarmed.counter("dataset_cache_hit") == 1


def test_truncated_dataset_cache_is_regenerated(tmp_path, small_arch):
    stats = CampaignStats()
    cached_dataset(tmp_path, _suite(), small_arch, CFG, stats=stats)
    [path] = tmp_path.glob("dvfs-*.npz")
    path.write_bytes(path.read_bytes()[:20])
    cached_dataset(tmp_path, _suite(), small_arch, CFG, stats=stats)
    assert stats.counter("dataset_cache_corrupt") == 1


def test_content_key_is_order_insensitive():
    assert content_key({"a": 1, "b": 2}) == content_key({"b": 2, "a": 1})
    assert content_key({"a": 1}) != content_key({"a": 2})


# ---------------------------------------------------------------------------
# Evaluation grid: parallel parity and caching
# ---------------------------------------------------------------------------

def _factories():
    return {"low": partial(StaticPolicy, 1), "high": partial(StaticPolicy, 4)}


def test_parallel_comparison_matches_serial(small_arch):
    serial = compare_policies(_factories(), [_eval_kernel()], small_arch,
                              0.1, seed=3)
    stats = CampaignStats()
    parallel = compare_policies(_factories(), [_eval_kernel()], small_arch,
                                0.1, seed=3, workers=2, stats=stats)
    assert serial.to_payload() == parallel.to_payload()


def test_comparison_payload_roundtrip(small_arch):
    result = compare_policies(_factories(), [_eval_kernel()], small_arch,
                              0.1, seed=3)
    clone = ComparisonResult.from_payload(result.to_payload())
    assert clone.to_payload() == result.to_payload()
    assert clone.policies() == result.policies()


def test_comparison_cache_hit_and_token_invalidation(tmp_path, small_arch):
    cold = CampaignStats()
    first = cached_comparison(tmp_path, _factories(), [_eval_kernel()],
                              small_arch, 0.1, seed=3, stats=cold)
    assert cold.counter("comparison_cache_miss") == 1

    warm = CampaignStats()
    second = cached_comparison(tmp_path, _factories(), [_eval_kernel()],
                               small_arch, 0.1, seed=3, stats=warm)
    assert warm.counter("comparison_cache_hit") == 1
    assert warm.counter("comparison_cache_miss") == 0
    assert first.to_payload() == second.to_payload()

    # A different model token must land on a fresh key.
    retoken = CampaignStats()
    cached_comparison(tmp_path, _factories(), [_eval_kernel()], small_arch,
                      0.1, seed=3, stats=retoken, cache_token="other-models")
    assert retoken.counter("comparison_cache_miss") == 1


def test_corrupt_comparison_cache_is_rerun(tmp_path, small_arch):
    stats = CampaignStats()
    first = cached_comparison(tmp_path, _factories(), [_eval_kernel()],
                              small_arch, 0.1, seed=3, stats=stats)
    [path] = tmp_path.glob("grid-*.json")
    path.write_text(path.read_text()[:25])  # truncated JSON
    recovered = cached_comparison(tmp_path, _factories(), [_eval_kernel()],
                                  small_arch, 0.1, seed=3, stats=stats)
    assert stats.counter("comparison_cache_corrupt") == 1
    assert stats.counter("comparison_cache_miss") == 2
    assert first.to_payload() == recovered.to_payload()


def test_comparison_key_depends_on_grid_parameters(small_arch):
    kernels = [_eval_kernel()]
    base = comparison_cache_key(["a"], kernels, small_arch, 0.1, seed=3)
    assert base == comparison_cache_key(["a"], kernels, small_arch, 0.1,
                                        seed=3)
    assert base != comparison_cache_key(["b"], kernels, small_arch, 0.1,
                                        seed=3)
    assert base != comparison_cache_key(["a"], kernels, small_arch, 0.2,
                                        seed=3)
    assert base != comparison_cache_key(["a"], kernels, small_arch, 0.1,
                                        seed=4)
