"""Losses, optimizers and metrics."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.nn.losses import MeanSquaredError, SoftmaxCrossEntropy, softmax
from repro.nn.metrics import (accuracy, confusion_matrix, macro_f1, mape,
                              within_one_accuracy)
from repro.nn.mlp import MLP
from repro.nn.optim import SGD, Adam


def test_softmax_rows_sum_to_one():
    logits = np.random.default_rng(0).normal(size=(5, 4)) * 10
    probs = softmax(logits)
    assert np.allclose(probs.sum(axis=1), 1.0)
    assert np.all(probs >= 0)


def test_softmax_stable_for_large_logits():
    probs = softmax(np.array([[1e4, 0.0]]))
    assert np.isfinite(probs).all()


def test_cross_entropy_perfect_prediction_near_zero():
    logits = np.array([[100.0, 0.0], [0.0, 100.0]])
    loss, _ = SoftmaxCrossEntropy()(logits, np.array([0, 1]))
    assert loss == pytest.approx(0.0, abs=1e-6)


def test_cross_entropy_gradient_direction():
    logits = np.zeros((1, 3))
    _, grad = SoftmaxCrossEntropy()(logits, np.array([1]))
    assert grad[0, 1] < 0  # push the true class up
    assert grad[0, 0] > 0 and grad[0, 2] > 0


def test_cross_entropy_rejects_bad_labels():
    with pytest.raises(TrainingError):
        SoftmaxCrossEntropy()(np.zeros((2, 3)), np.array([0, 3]))
    with pytest.raises(TrainingError):
        SoftmaxCrossEntropy()(np.zeros((2, 3)), np.array([0]))


def test_mse_value_and_gradient():
    pred = np.array([[1.0], [2.0]])
    target = np.array([[0.0], [2.0]])
    loss, grad = MeanSquaredError()(pred, target)
    assert loss == pytest.approx(0.5)
    assert grad[0, 0] == pytest.approx(1.0)
    assert grad[1, 0] == pytest.approx(0.0)


def test_mse_accepts_1d_targets():
    loss, _ = MeanSquaredError()(np.array([[1.0]]), np.array([1.0]))
    assert loss == pytest.approx(0.0)


def test_sgd_reduces_loss_on_toy_problem():
    rng = np.random.default_rng(5)
    model = MLP([2, 8, 1], rng=rng)
    x = rng.normal(size=(64, 2))
    y = (x[:, :1] * 2 - x[:, 1:] * 0.5)
    loss_fn = MeanSquaredError()
    opt = SGD(model, learning_rate=0.05)
    first, _ = loss_fn(model.forward(x), y)
    for _ in range(200):
        out = model.forward(x, train=True)
        _, grad = loss_fn(out, y)
        model.backward(grad)
        opt.step()
    last, _ = loss_fn(model.forward(x), y)
    assert last < first * 0.1


def test_adam_reduces_loss_on_toy_problem():
    rng = np.random.default_rng(6)
    model = MLP([2, 8, 1], rng=rng)
    x = rng.normal(size=(64, 2))
    y = np.sin(x[:, :1])
    loss_fn = MeanSquaredError()
    opt = Adam(model, learning_rate=0.01)
    first, _ = loss_fn(model.forward(x), y)
    for _ in range(300):
        out = model.forward(x, train=True)
        _, grad = loss_fn(out, y)
        model.backward(grad)
        opt.step()
    last, _ = loss_fn(model.forward(x), y)
    assert last < first * 0.2


def test_optimizers_respect_masks():
    rng = np.random.default_rng(7)
    for opt_cls in (SGD, Adam):
        model = MLP([2, 4, 1], rng=rng)
        model.layers[0].mask[0, 0] = 0.0
        model.layers[0].apply_mask()
        opt = opt_cls(model, learning_rate=0.1)
        x = rng.normal(size=(8, 2))
        y = rng.normal(size=(8, 1))
        for _ in range(5):
            out = model.forward(x, train=True)
            _, grad = MeanSquaredError()(out, y)
            model.backward(grad)
            opt.step()
        assert model.layers[0].weights[0, 0] == 0.0


def test_optimizer_validation():
    model = MLP([2, 2, 1])
    with pytest.raises(TrainingError):
        SGD(model, learning_rate=0.0)
    with pytest.raises(TrainingError):
        SGD(model, momentum=1.0)
    with pytest.raises(TrainingError):
        Adam(model, learning_rate=-1)
    with pytest.raises(TrainingError):
        Adam(model, beta1=1.0)


def test_accuracy_metric():
    assert accuracy(np.array([0, 1, 2]), np.array([0, 1, 1])) == pytest.approx(2 / 3)
    with pytest.raises(TrainingError):
        accuracy(np.array([]), np.array([]))
    with pytest.raises(TrainingError):
        accuracy(np.array([1]), np.array([1, 2]))


def test_within_one_accuracy():
    pred = np.array([0, 2, 5])
    true = np.array([1, 4, 5])
    assert within_one_accuracy(pred, true) == pytest.approx(2 / 3)


def test_mape_metric():
    assert mape(np.array([110.0]), np.array([100.0])) == pytest.approx(10.0)
    assert mape(np.array([1.0, 1.0]), np.array([1.0, 2.0])) == pytest.approx(25.0)


def test_mape_epsilon_guards_zero_targets():
    value = mape(np.array([1.0]), np.array([0.0]))
    assert np.isfinite(value)


def test_confusion_matrix():
    matrix = confusion_matrix(np.array([0, 1, 1]), np.array([0, 1, 0]), 2)
    assert matrix.tolist() == [[1, 1], [0, 1]]
    with pytest.raises(TrainingError):
        confusion_matrix(np.array([0, 5]), np.array([0, 1]), 2)


def test_macro_f1_perfect():
    assert macro_f1(np.array([0, 1, 2]), np.array([0, 1, 2]), 3) == pytest.approx(1.0)


def test_macro_f1_ignores_absent_classes():
    score = macro_f1(np.array([0, 0]), np.array([0, 0]), 5)
    assert score == pytest.approx(1.0)
