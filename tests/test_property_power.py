"""Property-based tests: power model and simulator invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.arch import small_test_config
from repro.gpu.cluster import ClusterState
from repro.gpu.noise import WorkloadNoise
from repro.gpu.simulator import GPUSimulator
from repro.power.model import PowerModel
from repro.rng import stream
from repro.units import us
from repro.workloads.generator import random_kernel

ARCH = small_test_config(num_clusters=2)


def _activity(seed, level):
    kernel = random_kernel(np.random.default_rng(seed))
    cluster = ClusterState(ARCH, kernel,
                           WorkloadNoise(stream(f"p{seed}", seed),
                                         kernel.jitter))
    cluster.set_level(level)
    return cluster.run_epoch(us(10))


@given(st.integers(0, 10_000), st.integers(0, 5))
@settings(max_examples=50, deadline=None)
def test_power_always_positive(seed, level):
    power = PowerModel().cluster_power(_activity(seed, level))
    assert power.dynamic_w > 0  # idle clock still burns
    assert power.static_w > 0
    assert power.energy_j > 0


@given(st.integers(0, 10_000))
@settings(max_examples=40, deadline=None)
def test_power_monotone_in_operating_point(seed):
    """Same workload epoch at a higher V/f point never uses less power."""
    powers = [PowerModel().cluster_power(_activity(seed, level)).total_w
              for level in range(6)]
    # Allow tiny non-monotonicity from different work completed per
    # epoch, but the ends must order strictly.
    assert powers[5] > powers[0]


@given(st.integers(0, 10_000))
@settings(max_examples=25, deadline=None)
def test_energy_accounting_closes(seed):
    """Sum of per-epoch energies equals the run's account."""
    kernel = random_kernel(np.random.default_rng(seed), max_iterations=2,
                           max_phases=2, max_instructions=120_000)
    simulator = GPUSimulator(ARCH, kernel, PowerModel(), seed=seed)
    simulator.set_all_levels(3)
    total = 0.0
    epochs = 0
    while not simulator.finished and epochs < 2000:
        record = simulator.step_epoch()
        total += record.energy_j
        epochs += 1
    assert simulator.finished
    assert total > 0


@given(st.integers(0, 10_000))
@settings(max_examples=20, deadline=None)
def test_snapshot_restore_identity_on_random_kernels(seed):
    kernel = random_kernel(np.random.default_rng(seed), max_iterations=4)
    simulator = GPUSimulator(ARCH, kernel, PowerModel(), seed=seed)
    simulator.step_epoch()
    if simulator.finished:
        return  # kernel fit inside the first epoch: nothing to replay
    snapshot = simulator.snapshot()
    first = simulator.step_epoch()
    simulator.restore(snapshot)
    second = simulator.step_epoch()
    assert first.instructions == pytest.approx(second.instructions)
    assert first.energy_j == pytest.approx(second.energy_j)


@given(st.integers(0, 10_000), st.integers(0, 5))
@settings(max_examples=20, deadline=None)
def test_mean_instructions_monotone_in_time(seed, level):
    kernel = random_kernel(np.random.default_rng(seed), max_iterations=4)
    simulator = GPUSimulator(ARCH, kernel, PowerModel(), seed=seed)
    simulator.set_all_levels(level)
    previous = 0.0
    for _ in range(10):
        if simulator.finished:
            break
        simulator.step_epoch()
        done = simulator.mean_instructions_done()
        assert done >= previous - 1e-9
        previous = done
